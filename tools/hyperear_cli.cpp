/// Command-line front end for the library.
///
///   hyperear_cli simulate --out-prefix /tmp/session [--distance 5]
///                [--phone s4|note3] [--env quiet|chatting|mall|mall-busy]
///                [--hand] [--3d] [--seed N]
///       renders a session and writes <prefix>.wav (stereo),
///       <prefix>_imu.csv, and <prefix>_truth.txt
///
///   hyperear_cli localize --wav FILE --imu FILE [--distance-hint ...]
///       runs the pipeline on recorded inputs and prints the fix
///
///   hyperear_cli demo [--seed N]
///       one self-contained simulate+localize round trip
///
///   hyperear_cli serve [--requests N] [--shards N] [--threads N]
///               [--in-flight N] [--queue N] [--seed N]
///       renders a small mixed-traffic pool and pushes it through the
///       admission-controlled runtime::Server (batch + streaming classes),
///       printing each request's admission and outcome plus the final
///       lifecycle totals
///
/// `localize`, `demo`, and `serve` accept `--metrics-out FILE`: the run executes
/// with a live metrics registry + tracer and dumps the telemetry to FILE —
/// Prometheus text format when FILE ends in ".prom", otherwise a JSON
/// object {"metrics": {...}, "trace": [...]} with per-stage spans.
///
/// The localize subcommand reconstructs the "prior" a phone app would have
/// natively (its own position is the map origin; believed yaw 0; the
/// default beacon chirp), so recorded sessions from elsewhere only need the
/// two sensor files.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.hpp"
#include "io/csv.hpp"
#include "io/wav.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/server.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace hyperear;

/// Tiny flag parser: --key value pairs plus boolean switches.
struct Args {
  std::map<std::string, std::string> values;
  std::map<std::string, bool> flags;

  static Args parse(int argc, char** argv, int first) {
    Args a;
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) continue;
      key = key.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        a.values[key] = argv[++i];
      } else {
        a.flags[key] = true;
      }
    }
    return a;
  }
  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  [[nodiscard]] double get_num(const std::string& key, double fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : std::stod(it->second);
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return flags.count(key) > 0 || values.count(key) > 0;
  }
};

sim::Environment environment_by_name(const std::string& name) {
  if (name == "chatting") return sim::meeting_room_chatting();
  if (name == "mall") return sim::mall_off_peak();
  if (name == "mall-busy") return sim::mall_busy_hour();
  return sim::meeting_room_quiet();
}

sim::ScenarioConfig config_from(const Args& args) {
  sim::ScenarioConfig c;
  c.phone = args.get("phone", "s4") == "note3" ? sim::galaxy_note3() : sim::galaxy_s4();
  c.environment = environment_by_name(args.get("env", "quiet"));
  c.speaker_distance = args.get_num("distance", 5.0);
  c.two_statures = args.has("3d");
  c.speaker_height = c.two_statures ? 0.5 : 1.3;
  c.jitter = args.has("hand") ? sim::hand_jitter() : sim::ruler_jitter();
  return c;
}

/// One run's observability bundle, created iff --metrics-out was given.
/// Registry and tracer live behind shared_ptrs so `serve` can hand them to
/// runtime::Server (whose shards co-own their observability sinks).
struct CliObs {
  std::shared_ptr<obs::MetricsRegistry> registry =
      std::make_shared<obs::MetricsRegistry>();
  std::shared_ptr<obs::Tracer> tracer = std::make_shared<obs::Tracer>();
  obs::ObsContext context{registry.get(), tracer.get(), 1};
  std::string path;

  /// Write the telemetry to `path`; returns false on I/O failure.
  bool write() const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::printf("cannot write metrics file %s\n", path.c_str());
      return false;
    }
    const bool prom = path.size() >= 5 && path.rfind(".prom") == path.size() - 5;
    if (prom) {
      const std::string text = registry->to_prometheus();
      std::fwrite(text.data(), 1, text.size(), f);
    } else {
      const std::string metrics = registry->to_json();
      const std::string trace = tracer->to_json();
      std::fprintf(f, "{\n\"metrics\": %s,\n\"trace\": %s}\n", metrics.c_str(),
                   trace.c_str());
    }
    std::fclose(f);
    std::printf("wrote telemetry to %s\n", path.c_str());
    return true;
  }
};

/// Null unless --metrics-out was given.
std::unique_ptr<CliObs> make_obs(const Args& args) {
  const std::string path = args.get("metrics-out", "");
  if (path.empty()) return nullptr;
  auto obs = std::make_unique<CliObs>();
  obs->path = path;
  return obs;
}

/// Print a localization outcome; returns the process exit code (0 = fix).
int print_fix(const Expected<core::LocalizationResult, core::PipelineError>& outcome) {
  if (!outcome.has_value()) {
    std::printf("localization ERROR %s\n", core::describe(outcome.error()).c_str());
    return 1;
  }
  const core::LocalizationResult& fix = *outcome;
  if (!fix.valid) {
    std::printf("localization FAILED (no accepted slides)\n");
    return 1;
  }
  std::printf("fix: position (%.3f, %.3f) m on the map, range %.3f m\n",
              fix.estimated_position.x, fix.estimated_position.y, fix.range);
  std::printf("     %d slides used, SFO %+.1f ppm (period %.6f s)\n", fix.slides_used,
              fix.sfo_ppm, fix.estimated_period);
  return 0;
}

int cmd_simulate(const Args& args) {
  const std::string prefix = args.get("out-prefix", "/tmp/hyperear_session");
  Rng rng(static_cast<std::uint64_t>(args.get_num("seed", 1.0)));
  const sim::ScenarioConfig c = config_from(args);
  std::printf("simulating: %s, %.1f m, %s, %s%s\n", c.phone.name.c_str(),
              c.speaker_distance, c.environment.name.c_str(),
              c.jitter.hand_held() ? "hand-held" : "ruler",
              c.two_statures ? ", two statures" : "");
  const sim::Session s = sim::make_localization_session(c, rng);
  io::write_wav(prefix + ".wav", {s.audio.mic1, s.audio.mic2}, s.audio.sample_rate);
  io::write_imu_csv(prefix + "_imu.csv", s.imu);
  {
    std::FILE* f = std::fopen((prefix + "_truth.txt").c_str(), "w");
    if (f == nullptr) {
      std::printf("cannot write truth file\n");
      return 1;
    }
    std::fprintf(f, "speaker %.6f %.6f %.6f\nphone_start %.6f %.6f %.6f\nyaw %.6f\n",
                 s.truth.speaker_position.x, s.truth.speaker_position.y,
                 s.truth.speaker_position.z, s.truth.phone_start_position.x,
                 s.truth.phone_start_position.y, s.truth.phone_start_position.z,
                 s.truth.in_direction_yaw);
    std::fclose(f);
  }
  std::printf("wrote %s.wav, %s_imu.csv, %s_truth.txt\n", prefix.c_str(), prefix.c_str(),
              prefix.c_str());
  return 0;
}

int cmd_localize(const Args& args) {
  const std::string wav_path = args.get("wav", "");
  const std::string imu_path = args.get("imu", "");
  if (wav_path.empty() || imu_path.empty()) {
    std::printf("localize needs --wav FILE and --imu FILE\n");
    return 2;
  }
  const io::WavData wav = io::read_wav(wav_path);
  if (wav.channels.size() != 2) {
    std::printf("expected a stereo WAV (got %zu channels)\n", wav.channels.size());
    return 2;
  }
  sim::Session s;
  s.audio.sample_rate = wav.sample_rate;
  s.audio.mic1 = wav.channels[0];
  s.audio.mic2 = wav.channels[1];
  s.imu = io::read_imu_csv(imu_path);
  // App-native prior: the user is the origin, facing the beacon.
  s.prior.phone_start_position = {0.0, 0.0, 1.3};
  s.prior.believed_yaw = 0.0;
  s.prior.two_statures = args.has("3d");
  s.config.phone =
      args.get("phone", "s4") == "note3" ? sim::galaxy_note3() : sim::galaxy_s4();
  const std::unique_ptr<CliObs> obs = make_obs(args);
  const auto outcome = core::try_localize(
      s, {}, nullptr, obs != nullptr ? &obs->context : nullptr);
  const int code = print_fix(outcome);
  if (obs != nullptr && !obs->write()) return 1;
  return code;
}

int cmd_demo(const Args& args) {
  Rng rng(static_cast<std::uint64_t>(args.get_num("seed", 7.0)));
  sim::ScenarioConfig c = config_from(args);
  const sim::Session s = sim::make_localization_session(c, rng);
  const std::unique_ptr<CliObs> obs = make_obs(args);
  const auto outcome = core::try_localize(
      s, {}, nullptr, obs != nullptr ? &obs->context : nullptr);
  const int code = print_fix(outcome);
  if (obs != nullptr) obs->write();
  if (code == 0) {
    std::printf("     truth (%.3f, %.3f) -> error %.1f cm\n",
                s.truth.speaker_position.x, s.truth.speaker_position.y,
                100.0 * core::localization_error(*outcome, s));
  }
  return code;
}

int cmd_serve(const Args& args) {
  Rng rng(static_cast<std::uint64_t>(args.get_num("seed", 11.0)));
  const std::size_t requests =
      static_cast<std::size_t>(args.get_num("requests", 10.0));
  runtime::ServerOptions opts;
  opts.shards = static_cast<std::size_t>(args.get_num("shards", 2.0));
  opts.threads_per_shard = static_cast<std::size_t>(args.get_num("threads", 2.0));
  opts.max_in_flight = static_cast<std::size_t>(args.get_num("in-flight", 4.0));
  opts.max_queued = static_cast<std::size_t>(args.get_num("queue", 8.0));

  // A small mixed-traffic pool: quiet ruler, chatting hand-held, and a
  // mall session on a second chirp band so both shard plan keys see work.
  std::vector<sim::Session> pool;
  {
    sim::ScenarioConfig quiet;
    quiet.speaker_distance = 4.0;
    quiet.slides_per_stature = 3;
    quiet.calibration_duration = 3.0;
    quiet.jitter = sim::ruler_jitter();
    sim::ScenarioConfig chatting = quiet;
    chatting.environment = sim::meeting_room_chatting();
    chatting.jitter = sim::hand_jitter();
    sim::ScenarioConfig mall = quiet;
    mall.environment = sim::mall_off_peak();
    mall.speaker.chirp.freq_high_hz = 5800.0;  // hashes to the odd shard
    for (const sim::ScenarioConfig& c : {quiet, chatting, mall}) {
      pool.push_back(sim::make_localization_session(c, rng));
    }
  }

  const std::unique_ptr<CliObs> obs = make_obs(args);
  runtime::Server server({}, opts,
                         obs != nullptr
                             ? runtime::EngineObs{obs->registry, obs->tracer}
                             : runtime::EngineObs{});
  std::printf("serving: %zu shard(s) x %zu thread(s), %zu in flight, queue %zu\n",
              server.shard_count(), opts.threads_per_shard, opts.max_in_flight,
              opts.max_queued);

  std::vector<std::future<runtime::Response>> futures;
  for (std::size_t i = 0; i < requests; ++i) {
    const sim::Session& session = pool[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
    const runtime::RequestClass cls = rng.uniform_int(0, 9) < 3
                                          ? runtime::RequestClass::streaming
                                          : runtime::RequestClass::batch;
    runtime::SubmitResult r = server.submit(session, cls);
    std::printf("submit %2llu [%-9s] -> %s (shard %zu)\n",
                static_cast<unsigned long long>(r.id), runtime::to_string(cls),
                runtime::to_string(r.admission), server.shard_for(session));
    if (r.admission == runtime::Admission::accepted) {
      futures.push_back(std::move(r.response));
    }
  }
  server.drain();

  for (std::future<runtime::Response>& f : futures) {
    const runtime::Response r = f.get();
    if (r.outcome == runtime::RequestOutcome::completed) {
      std::printf("request %2llu: completed on shard %zu in %7.1f ms -> %s\n",
                  static_cast<unsigned long long>(r.id), r.shard, r.latency_ms,
                  runtime::to_string(r.report.status));
    } else {
      std::printf("request %2llu: %s\n",
                  static_cast<unsigned long long>(r.id),
                  runtime::to_string(r.outcome));
    }
  }

  const runtime::ServerStats s = server.stats();
  std::printf("totals: %zu submitted, %zu completed, %zu shed, %zu expired, "
              "%zu cancelled (peak queue %zu, peak in flight %zu)\n",
              s.submitted, s.completed, s.shed, s.expired, s.cancelled,
              s.peak_queued, s.peak_in_flight);
  server.shutdown();
  if (obs != nullptr && !obs->write()) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::printf("usage: hyperear_cli simulate|localize|demo|serve [--flags]\n");
    return 2;
  }
  const std::string cmd = argv[1];
  const Args args = Args::parse(argc, argv, 2);
  try {
    if (cmd == "simulate") return cmd_simulate(args);
    if (cmd == "localize") return cmd_localize(args);
    if (cmd == "demo") return cmd_demo(args);
    if (cmd == "serve") return cmd_serve(args);
  } catch (const std::exception& e) {
    std::printf("error: %s\n", e.what());
    return 1;
  }
  std::printf("unknown command '%s'\n", cmd.c_str());
  return 2;
}
