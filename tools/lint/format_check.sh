#!/usr/bin/env bash
# ctest entry `lint.format_check`: clang-format --dry-run -Werror over the
# tree, using the checked-in .clang-format. Exit 77 (ctest SKIP_RETURN_CODE)
# where clang-format is not installed — the whitespace floor still holds via
# hyperear_lint's whitespace rule, which always runs.
set -u
ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
if ! command -v clang-format > /dev/null 2>&1; then
  echo "format_check: clang-format not installed; skipping (.clang-format is checked in)"
  exit 77
fi
mapfile -t files < <(find "${ROOT}/src" "${ROOT}/tests" "${ROOT}/bench" \
    "${ROOT}/tools" "${ROOT}/examples" \( -name '*.cpp' -o -name '*.hpp' \) | sort)
exec clang-format --dry-run -Werror --style=file "${files[@]}"
