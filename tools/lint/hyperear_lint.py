#!/usr/bin/env python3
"""HyperEar determinism & hygiene linter (DESIGN.md §11).

Project-invariant checks that neither the compiler nor clang-tidy enforce,
applied regex/AST-lite style over the checked-in sources:

  determinism   no rand()/std::random_device and no wall-clock reads
                (system_clock, high_resolution_clock) anywhere under src/;
                steady_clock is allowed only in src/obs and src/runtime
                (telemetry), so pipeline results stay a pure function of
                the session data. All randomness goes through the seeded
                common/rng.hpp.
  ownership     no naked new/delete in library code (src/): containers and
                smart pointers own everything; bench binaries may replace
                the global allocator.
  logging       no printf/puts/cout-style output in library code (src/):
                snprintf formatting into a caller buffer is fine, writing
                to stdout from a library is not.
  headers       every header uses #pragma once; no <iostream> in headers
                (it drags an ELF-wide static initializer into every TU).
  suppressions  every NOLINT escape hatch carries a written reason:
                `// NOLINT(<check>) -- <why>`.
  hotpath       files listed in tools/lint/hotpath_files.txt run once per
                session in the batch engine's steady state, where buffers
                come from a leased SessionWorkspace and allocate nothing.
                In those files, std::vector value declarations (locals,
                by-value parameters, by-value returns) and resize/reserve
                on receivers that are not workspace-owned (`ws.*`, `out`,
                `workspace*`, or an ArenaVector declared in the file) are
                flagged. Cold-path code in a hot file — plan construction,
                convenience wrappers returning owning containers —
                suppresses with `NOLINT(hyperear-hotpath) -- <why>`
                (NEXTLINE/BEGIN/END work too, reasons required as usual).
  concurrency   src/runtime + src/obs never name the raw std primitives
                (std::mutex, std::lock_guard, std::unique_lock,
                std::condition_variable, ...): they use the annotated
                he::Mutex / he::MutexLock / he::CondVar wrappers from
                common/thread_annotations.hpp so every lock site is
                visible to clang's thread-safety analysis. Anywhere in
                the tree, HE_NO_THREAD_SAFETY_ANALYSIS must carry a
                non-empty reason string.
  lockorder     tools/lint/lock_order.txt is the canonical lock
                hierarchy. Every he::Mutex MEMBER declared in a header
                under src/runtime + src/obs must carry HE_LOCK_LEVEL(<l>)
                on the declaration line, the (level, file, member) triple
                must match a manifest row (and vice versa — stale rows
                fail), and the boundary-token HE_ACQUIRED_AFTER chain in
                common/thread_annotations.hpp must spell out the same
                level order as the manifest.
  whitespace    no trailing whitespace, no tabs in C++ sources, no CRLF,
                final newline present — the formatting floor that holds
                even where clang-format isn't installed.

Exit status: 0 clean, 1 findings, 2 usage error. --json PATH additionally
writes machine-readable findings (the run_lint.sh driver merges these into
LINT_report.json).
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

CXX_EXTENSIONS = {".cpp", ".hpp", ".cc", ".h"}

# Directories scanned relative to the repo root. Build trees are never
# scanned.
SCAN_DIRS = ["src", "bench", "tools", "tests", "examples"]

# Library code: the determinism/ownership/logging rules apply here.
LIBRARY_PREFIX = "src/"
# Telemetry layers where the monotonic clock is sanctioned.
STEADY_CLOCK_ALLOWED = ("src/obs/", "src/runtime/")

# Checked-in manifest of steady-state per-session files (hotpath rule).
HOTPATH_MANIFEST = "tools/lint/hotpath_files.txt"

# Layers where the annotated wrappers are mandatory (concurrency rule) and
# whose header-declared mutexes must appear in the lock-order manifest.
CONCURRENCY_DIRS = ("src/runtime/", "src/obs/")
# Checked-in lock hierarchy (lockorder rule).
LOCK_ORDER_MANIFEST = "tools/lint/lock_order.txt"
# Defines the wrappers and the boundary-token chain; exempt from the
# concurrency rule (it IS the sanctioned spelling of the std primitives).
THREAD_ANNOTATIONS_HEADER = "src/common/thread_annotations.hpp"

LINE_COMMENT = re.compile(r"//.*$")

RULES_HELP = (
    "determinism ownership logging headers suppressions hotpath "
    "concurrency lockorder whitespace"
)


def load_hotpath_manifest(root: Path) -> set[str]:
    manifest = root / HOTPATH_MANIFEST
    if not manifest.is_file():
        return set()
    entries: set[str] = set()
    for line in manifest.read_text(encoding="utf-8").splitlines():
        entry = line.split("#", 1)[0].strip()
        if entry:
            entries.add(entry.replace("\\", "/"))
    return entries


def load_lock_order_manifest(root: Path) -> tuple[list[str], list[dict], list[str]]:
    """Parse LOCK_ORDER_MANIFEST into (ordered levels, mutex rows, parse
    errors). Rows are {level, file, member, line}."""
    manifest = root / LOCK_ORDER_MANIFEST
    levels: list[str] = []
    rows: list[dict] = []
    errors: list[str] = []
    if not manifest.is_file():
        return levels, rows, errors
    for idx, raw in enumerate(manifest.read_text(encoding="utf-8").splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if parts[0] == "level" and len(parts) == 2:
            if parts[1] in levels:
                errors.append(f"line {idx}: duplicate level `{parts[1]}`")
            levels.append(parts[1])
        elif parts[0] == "mutex" and len(parts) == 4:
            rows.append(
                {
                    "level": parts[1],
                    "file": parts[2].replace("\\", "/"),
                    "member": parts[3],
                    "line": idx,
                }
            )
        else:
            errors.append(f"line {idx}: expected `level <name>` or `mutex <level> <file> <member>`")
    for row in rows:
        if row["level"] not in levels:
            errors.append(
                f"line {row['line']}: mutex row uses undeclared level `{row['level']}`"
            )
    return levels, rows, errors


def strip_comments_and_strings(line: str) -> str:
    """Best-effort removal of // comments and string/char literals so the
    regexes below match code, not prose. Block comments spanning lines are
    handled by the caller's state machine."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in ('"', "'"):
            quote = c
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    break
                i += 1
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


class Linter:
    def __init__(self, root: Path):
        self.root = root
        self.findings: list[dict] = []
        self.hotpath_files = load_hotpath_manifest(root)
        self.hotpath_seen: set[str] = set()
        self.lock_levels, self.lock_rows, self.lock_manifest_errors = (
            load_lock_order_manifest(root)
        )
        # he::Mutex member declarations found in concurrency-layer headers:
        # (rel file, line, member name, level or None).
        self.mutex_decls: list[tuple[str, int, str, str | None]] = []

    def add(self, rule: str, path: Path, line_no: int, message: str) -> None:
        self.findings.append(
            {
                "tool": "hyperear_lint",
                "rule": rule,
                "file": str(path.relative_to(self.root)),
                "line": line_no,
                "message": message,
            }
        )

    # --- per-file checks -------------------------------------------------

    def lint_file(self, path: Path) -> None:
        rel = str(path.relative_to(self.root)).replace("\\", "/")
        raw = path.read_bytes()
        if b"\r\n" in raw:
            self.add("whitespace", path, 1, "CRLF line endings")
        text = raw.decode("utf-8", errors="replace")
        lines = text.split("\n")
        if text and not text.endswith("\n"):
            self.add("whitespace", path, len(lines), "missing final newline")

        is_header = path.suffix in {".hpp", ".h"}
        is_library = rel.startswith(LIBRARY_PREFIX)
        steady_ok = rel.startswith(STEADY_CLOCK_ALLOWED)
        is_concurrency = rel.startswith(CONCURRENCY_DIRS)
        is_hotpath = rel in self.hotpath_files
        if is_hotpath:
            self.hotpath_seen.add(rel)
            # ArenaVector-backed buffers bump a workspace arena, not the
            # heap: resize/reserve on them is sanctioned by declaration.
            arena_names = set(re.findall(r"\bArenaVector<[^>]*>\s+(\w+)", text))
            hot_block_suppressed = False
            hot_next_suppressed = False

        in_block_comment = False
        for idx, line in enumerate(lines, start=1):
            self.check_whitespace(path, idx, line)
            code = line
            if in_block_comment:
                end = code.find("*/")
                if end < 0:
                    continue
                code = code[end + 2 :]
                in_block_comment = False
            # NOLINT audit runs on the raw line: the directive lives in a
            # comment by definition.
            self.check_suppression(path, idx, line)
            code = strip_comments_and_strings(code)
            start = code.find("/*")
            if start >= 0:
                end = code.find("*/", start + 2)
                if end < 0:
                    in_block_comment = True
                    code = code[:start]
                else:
                    code = code[:start] + code[end + 2 :]

            if is_header:
                self.check_header_line(path, idx, code)
            if is_library:
                self.check_determinism(path, idx, code, steady_ok)
                self.check_ownership(path, idx, code)
                self.check_logging(path, idx, code)
            if rel != THREAD_ANNOTATIONS_HEADER:
                self.check_tsa_suppression(path, idx, code, line)
            if is_concurrency:
                self.check_concurrency(path, idx, code)
                if is_header:
                    self.collect_mutex_decl(rel, idx, code)
            if is_hotpath:
                # Suppression directives live in comments: read the raw
                # line. The rule honors the project's NOLINT-with-reason
                # forms when the named check mentions "hotpath".
                if self.HOT_NOLINT_BEGIN.search(line):
                    hot_block_suppressed = True
                suppressed = (
                    hot_block_suppressed
                    or hot_next_suppressed
                    or self.HOT_NOLINT_LINE.search(line) is not None
                )
                if self.HOT_NOLINT_END.search(line):
                    hot_block_suppressed = False
                hot_next_suppressed = self.HOT_NOLINT_NEXTLINE.search(line) is not None
                if not suppressed:
                    self.check_hotpath(path, idx, code, arena_names)

    def check_whitespace(self, path: Path, idx: int, line: str) -> None:
        stripped = line.rstrip("\r")
        if stripped != stripped.rstrip():
            self.add("whitespace", path, idx, "trailing whitespace")
        if "\t" in stripped:
            self.add("whitespace", path, idx, "tab character in C++ source")

    DETERMINISM_BANNED = [
        (re.compile(r"(?<![\w:])rand\s*\("), "rand(): use the seeded common/rng.hpp"),
        (re.compile(r"\bsrand\s*\("), "srand(): use the seeded common/rng.hpp"),
        (
            re.compile(r"\brandom_device\b"),
            "std::random_device: nondeterministic seed source; use common/rng.hpp",
        ),
        (
            re.compile(r"\bsystem_clock\b"),
            "system_clock: wall-clock read in library code",
        ),
        (
            re.compile(r"\bhigh_resolution_clock\b"),
            "high_resolution_clock: unspecified clock; telemetry uses obs/clock.hpp",
        ),
    ]

    def check_determinism(
        self, path: Path, idx: int, code: str, steady_ok: bool
    ) -> None:
        for pattern, why in self.DETERMINISM_BANNED:
            if pattern.search(code):
                self.add("determinism", path, idx, why)
        if not steady_ok and re.search(r"\bsteady_clock\b", code):
            self.add(
                "determinism",
                path,
                idx,
                "steady_clock outside src/obs+src/runtime: route timing "
                "through obs/clock.hpp",
            )

    NAKED_NEW = re.compile(r"(?<![\w_])new\s+[A-Za-z_(:<]")
    NAKED_DELETE = re.compile(r"(?<![\w_])delete(\s*\[\s*\])?\s+[A-Za-z_(:*]")

    def check_ownership(self, path: Path, idx: int, code: str) -> None:
        if self.NAKED_NEW.search(code):
            self.add(
                "ownership", path, idx, "naked new: use containers/make_unique"
            )
        if self.NAKED_DELETE.search(code) and "= delete" not in code:
            self.add("ownership", path, idx, "naked delete: use owning types")

    LOGGING_BANNED = re.compile(
        r"(?<![\w:])(?:std\s*::\s*)?(printf|puts|putchar|vprintf)\s*\("
    )
    STDOUT_FPRINTF = re.compile(r"\bfprintf\s*\(\s*std(?:out|err)\b")

    def check_logging(self, path: Path, idx: int, code: str) -> None:
        if self.LOGGING_BANNED.search(code) or self.STDOUT_FPRINTF.search(code):
            self.add(
                "logging",
                path,
                idx,
                "stdout/stderr write in library code: return data, or format "
                "with snprintf into a caller buffer",
            )

    IOSTREAM_INCLUDE = re.compile(r"#\s*include\s*<iostream>")

    def check_header_line(self, path: Path, idx: int, code: str) -> None:
        if self.IOSTREAM_INCLUDE.search(code):
            self.add(
                "headers", path, idx, "#include <iostream> in a header"
            )

    NOLINT_ANY = re.compile(r"NOLINT(NEXTLINE|BEGIN|END)?\b")
    NOLINT_WITH_REASON = re.compile(
        r"NOLINT(?:NEXTLINE|BEGIN|END)?\(([^)]+)\)\s*--\s*\S"
    )

    def check_suppression(self, path: Path, idx: int, line: str) -> None:
        if not self.NOLINT_ANY.search(line) or "NOLINT_ANY" in line:
            return
        if not self.NOLINT_WITH_REASON.search(line):
            self.add(
                "suppressions",
                path,
                idx,
                "NOLINT without named check + reason: write "
                "`NOLINT(<check>) -- <why>`",
            )

    # Raw std synchronization primitives banned in the annotated layers
    # (the wrappers in common/thread_annotations.hpp are the only sanctioned
    # spelling — a raw primitive is invisible to the thread-safety analysis).
    RAW_SYNC_PRIMITIVE = re.compile(
        r"\bstd\s*::\s*(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
        r"shared_mutex|shared_timed_mutex|condition_variable|"
        r"condition_variable_any|lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    )

    def check_concurrency(self, path: Path, idx: int, code: str) -> None:
        m = self.RAW_SYNC_PRIMITIVE.search(code)
        if m:
            self.add(
                "concurrency",
                path,
                idx,
                f"raw std::{m.group(1)} in an annotated layer: use he::Mutex/"
                "he::MutexLock/he::CondVar (common/thread_annotations.hpp) so "
                "the lock protocol stays machine-checked",
            )

    # The macro swallows its reason argument, so the string exists purely
    # for humans + this check — exactly the NOLINT-with-reason policy.
    TSA_SUPPRESS_USE = re.compile(r"\bHE_NO_THREAD_SAFETY_ANALYSIS\s*\(")
    TSA_SUPPRESS_WITH_REASON = re.compile(
        r'\bHE_NO_THREAD_SAFETY_ANALYSIS\(\s*"[^"]+"\s*\)'
    )

    def check_tsa_suppression(
        self, path: Path, idx: int, code: str, line: str
    ) -> None:
        if not self.TSA_SUPPRESS_USE.search(code):
            return
        if not self.TSA_SUPPRESS_WITH_REASON.search(line):
            self.add(
                "concurrency",
                path,
                idx,
                "HE_NO_THREAD_SAFETY_ANALYSIS without a reason: write "
                'HE_NO_THREAD_SAFETY_ANALYSIS("<why the protocol is sound '
                'but inexpressible>")',
            )

    # A he::Mutex member declaration; HE_LOCK_LEVEL must ride on the same
    # line (the project declares them single-line by convention).
    MUTEX_MEMBER_DECL = re.compile(r"\bhe\s*::\s*Mutex\s+(\w+)")
    MUTEX_LEVEL = re.compile(r"\bHE_LOCK_LEVEL\(\s*(\w+)\s*\)")

    def collect_mutex_decl(self, rel: str, idx: int, code: str) -> None:
        m = self.MUTEX_MEMBER_DECL.search(code)
        if m is None:
            return
        level = self.MUTEX_LEVEL.search(code)
        self.mutex_decls.append(
            (rel, idx, m.group(1), level.group(1) if level else None)
        )

    def check_lock_order(self) -> None:
        manifest = self.root / LOCK_ORDER_MANIFEST
        for err in self.lock_manifest_errors:
            self.add("lockorder", manifest, 1, err)
        if not self.lock_levels:
            self.add(
                "lockorder",
                manifest,
                1,
                "missing or empty lock-order manifest: every he::Mutex member "
                "in src/runtime + src/obs must be declared here",
            )
            return
        rows = {(r["file"], r["member"]): r for r in self.lock_rows}
        seen: set[tuple[str, str]] = set()
        for rel, idx, member, level in self.mutex_decls:
            path = self.root / rel
            if level is None:
                self.add(
                    "lockorder",
                    path,
                    idx,
                    f"he::Mutex member `{member}` without HE_LOCK_LEVEL(<level>) "
                    "on the declaration line",
                )
                continue
            if level not in self.lock_levels:
                self.add(
                    "lockorder",
                    path,
                    idx,
                    f"HE_LOCK_LEVEL({level}) names a level not in "
                    f"{LOCK_ORDER_MANIFEST}",
                )
                continue
            row = rows.get((rel, member))
            if row is None:
                self.add(
                    "lockorder",
                    path,
                    idx,
                    f"he::Mutex member `{member}` is not listed in "
                    f"{LOCK_ORDER_MANIFEST}: add `mutex {level} {rel} {member}`",
                )
                continue
            seen.add((rel, member))
            if row["level"] != level:
                self.add(
                    "lockorder",
                    path,
                    idx,
                    f"`{member}` declares HE_LOCK_LEVEL({level}) but the "
                    f"manifest says `{row['level']}` — fix whichever is wrong",
                )
        for key, row in sorted(rows.items()):
            if key not in seen:
                self.add(
                    "lockorder",
                    manifest,
                    row["line"],
                    f"stale manifest row: no he::Mutex member `{row['member']}` "
                    f"found in {row['file']}",
                )
        self.check_boundary_chain(manifest)

    # Boundary tokens in thread_annotations.hpp:
    #   inline LockLevel below_<level> [HE_ACQUIRED_AFTER(below_<prev>)];
    BOUNDARY_DECL = re.compile(
        r"inline\s+LockLevel\s+below_(\w+)"
        r"(?:\s+HE_ACQUIRED_AFTER\(\s*below_(\w+)\s*\))?\s*;"
    )
    LEVEL_MACRO_DEF = re.compile(r"#define\s+HE_LOCK_LEVEL_(\w+)\b")

    def check_boundary_chain(self, manifest: Path) -> None:
        header = self.root / THREAD_ANNOTATIONS_HEADER
        if not header.is_file():
            self.add(
                "lockorder", manifest, 1, f"{THREAD_ANNOTATIONS_HEADER} not found"
            )
            return
        text = header.read_text(encoding="utf-8", errors="replace")
        chain = self.BOUNDARY_DECL.findall(text)
        # Every level except the bottom one owns the boundary token below it,
        # and each token chains HE_ACQUIRED_AFTER the one above.
        expected = self.lock_levels[:-1]
        declared = [name for name, _ in chain]
        if declared != expected:
            self.add(
                "lockorder",
                header,
                1,
                f"boundary tokens {declared} disagree with the manifest level "
                f"order {self.lock_levels} (expected tokens {expected})",
            )
        for pos, (name, after) in enumerate(chain):
            want = chain[pos - 1][0] if pos > 0 else ""
            if (after or "") != want:
                self.add(
                    "lockorder",
                    header,
                    1,
                    f"boundary token below_{name} must chain "
                    f"HE_ACQUIRED_AFTER(below_{want})" if want else
                    f"boundary token below_{name} is the top boundary and "
                    "must not declare HE_ACQUIRED_AFTER",
                )
        macros = set(self.LEVEL_MACRO_DEF.findall(text))
        for level in self.lock_levels:
            if level not in macros:
                self.add(
                    "lockorder",
                    header,
                    1,
                    f"no #define HE_LOCK_LEVEL_{level} for manifest level "
                    f"`{level}`",
                )

    HOT_NOLINT_LINE = re.compile(r"NOLINT\([^)]*hotpath[^)]*\)")
    HOT_NOLINT_NEXTLINE = re.compile(r"NOLINTNEXTLINE\([^)]*hotpath[^)]*\)")
    HOT_NOLINT_BEGIN = re.compile(r"NOLINTBEGIN\([^)]*hotpath[^)]*\)")
    HOT_NOLINT_END = re.compile(r"NOLINTEND\([^)]*hotpath[^)]*\)")

    HOT_RESIZE = re.compile(r"([A-Za-z_]\w*(?:(?:\.|->)\w+)*)\s*\.\s*(resize|reserve)\s*\(")
    # Receivers that bump workspace-owned storage, not the heap: leased
    # DetectorWorkspace fields (`ws.*`), the caller-owned `_into` output
    # convention (`out`), and anything spelled as a workspace.
    HOT_SANCTIONED_RECEIVERS = {"ws", "out", "workspace"}

    def check_hotpath(
        self, path: Path, idx: int, code: str, arena_names: set[str]
    ) -> None:
        for _ in self.find_vector_value_decls(code):
            self.add(
                "hotpath",
                path,
                idx,
                "std::vector value construction in a steady-state file: "
                "route buffers through SessionWorkspace/DetectorWorkspace, "
                "or mark cold-path code NOLINT(hyperear-hotpath) -- <why>",
            )
        for m in self.HOT_RESIZE.finditer(code):
            receiver_head = re.split(r"\.|->", m.group(1))[0]
            if receiver_head in self.HOT_SANCTIONED_RECEIVERS:
                continue
            if receiver_head in arena_names or "workspace" in receiver_head:
                continue
            self.add(
                "hotpath",
                path,
                idx,
                f"{m.group(2)} on non-workspace buffer `{m.group(1)}` in a "
                "steady-state file: grow workspace-owned storage instead, "
                "or mark cold-path code NOLINT(hyperear-hotpath) -- <why>",
            )

    @staticmethod
    def find_vector_value_decls(code: str) -> list[int]:
        """Positions of `std::vector<...>` spellings that declare a VALUE
        (local, by-value parameter, by-value return) — i.e. the template is
        followed by an identifier rather than `&`, `*`, `::`, `(` or `{`.
        Angle brackets are counted so nested template arguments parse."""
        hits: list[int] = []
        start = 0
        while True:
            at = code.find("std::vector", start)
            if at < 0:
                return hits
            i = at + len("std::vector")
            while i < len(code) and code[i].isspace():
                i += 1
            if i >= len(code) or code[i] != "<":
                start = at + 1
                continue
            depth = 0
            while i < len(code):
                if code[i] == "<":
                    depth += 1
                elif code[i] == ">":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            i += 1  # past the closing '>'
            while i < len(code) and code[i].isspace():
                i += 1
            if i < len(code) and (code[i].isalpha() or code[i] == "_"):
                hits.append(at)
            start = at + 1

    # --- driver ----------------------------------------------------------

    def run(self) -> int:
        for d in SCAN_DIRS:
            base = self.root / d
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*")):
                if path.suffix in CXX_EXTENSIONS and path.is_file():
                    self.lint_file(path)
        self.check_lock_order()
        # A manifest entry that matches no scanned file is a silent hole in
        # the allocation guard (renamed file, stale path): fail loudly.
        for missing in sorted(self.hotpath_files - self.hotpath_seen):
            self.add(
                "hotpath",
                self.root / HOTPATH_MANIFEST,
                1,
                f"manifest lists `{missing}` but no such file was scanned",
            )
        # This file states its own rule patterns; it is python, not scanned.
        return 1 if self.findings else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parents[2],
        help="repo root (default: two levels above this script)",
    )
    parser.add_argument("--json", type=Path, help="write findings as JSON")
    args = parser.parse_args()

    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"hyperear_lint: {root} does not look like the repo root", file=sys.stderr)
        return 2

    linter = Linter(root)
    status = linter.run()
    for f in linter.findings:
        print(f"{f['file']}:{f['line']}: [{f['rule']}] {f['message']}")
    print(
        f"hyperear_lint: {len(linter.findings)} finding(s) "
        f"({RULES_HELP})"
    )
    if args.json:
        args.json.write_text(json.dumps(linter.findings, indent=2) + "\n")
    return status


if __name__ == "__main__":
    sys.exit(main())
