#!/usr/bin/env python3
"""HyperEar determinism & hygiene linter (DESIGN.md §11).

Project-invariant checks that neither the compiler nor clang-tidy enforce,
applied regex/AST-lite style over the checked-in sources:

  determinism   no rand()/std::random_device and no wall-clock reads
                (system_clock, high_resolution_clock) anywhere under src/;
                steady_clock is allowed only in src/obs and src/runtime
                (telemetry), so pipeline results stay a pure function of
                the session data. All randomness goes through the seeded
                common/rng.hpp.
  ownership     no naked new/delete in library code (src/): containers and
                smart pointers own everything; bench binaries may replace
                the global allocator.
  logging       no printf/puts/cout-style output in library code (src/):
                snprintf formatting into a caller buffer is fine, writing
                to stdout from a library is not.
  headers       every header uses #pragma once; no <iostream> in headers
                (it drags an ELF-wide static initializer into every TU).
  suppressions  every NOLINT escape hatch carries a written reason:
                `// NOLINT(<check>) -- <why>`.
  hotpath       files listed in tools/lint/hotpath_files.txt run once per
                session in the batch engine's steady state, where buffers
                come from a leased SessionWorkspace and allocate nothing.
                In those files, std::vector value declarations (locals,
                by-value parameters, by-value returns) and resize/reserve
                on receivers that are not workspace-owned (`ws.*`, `out`,
                `workspace*`, or an ArenaVector declared in the file) are
                flagged. Cold-path code in a hot file — plan construction,
                convenience wrappers returning owning containers —
                suppresses with `NOLINT(hyperear-hotpath) -- <why>`
                (NEXTLINE/BEGIN/END work too, reasons required as usual).
  whitespace    no trailing whitespace, no tabs in C++ sources, no CRLF,
                final newline present — the formatting floor that holds
                even where clang-format isn't installed.

Exit status: 0 clean, 1 findings, 2 usage error. --json PATH additionally
writes machine-readable findings (the run_lint.sh driver merges these into
LINT_report.json).
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

CXX_EXTENSIONS = {".cpp", ".hpp", ".cc", ".h"}

# Directories scanned relative to the repo root. Build trees are never
# scanned.
SCAN_DIRS = ["src", "bench", "tools", "tests", "examples"]

# Library code: the determinism/ownership/logging rules apply here.
LIBRARY_PREFIX = "src/"
# Telemetry layers where the monotonic clock is sanctioned.
STEADY_CLOCK_ALLOWED = ("src/obs/", "src/runtime/")

# Checked-in manifest of steady-state per-session files (hotpath rule).
HOTPATH_MANIFEST = "tools/lint/hotpath_files.txt"

LINE_COMMENT = re.compile(r"//.*$")

RULES_HELP = "determinism ownership logging headers suppressions hotpath whitespace"


def load_hotpath_manifest(root: Path) -> set[str]:
    manifest = root / HOTPATH_MANIFEST
    if not manifest.is_file():
        return set()
    entries: set[str] = set()
    for line in manifest.read_text(encoding="utf-8").splitlines():
        entry = line.split("#", 1)[0].strip()
        if entry:
            entries.add(entry.replace("\\", "/"))
    return entries


def strip_comments_and_strings(line: str) -> str:
    """Best-effort removal of // comments and string/char literals so the
    regexes below match code, not prose. Block comments spanning lines are
    handled by the caller's state machine."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in ('"', "'"):
            quote = c
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    break
                i += 1
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


class Linter:
    def __init__(self, root: Path):
        self.root = root
        self.findings: list[dict] = []
        self.hotpath_files = load_hotpath_manifest(root)
        self.hotpath_seen: set[str] = set()

    def add(self, rule: str, path: Path, line_no: int, message: str) -> None:
        self.findings.append(
            {
                "tool": "hyperear_lint",
                "rule": rule,
                "file": str(path.relative_to(self.root)),
                "line": line_no,
                "message": message,
            }
        )

    # --- per-file checks -------------------------------------------------

    def lint_file(self, path: Path) -> None:
        rel = str(path.relative_to(self.root)).replace("\\", "/")
        raw = path.read_bytes()
        if b"\r\n" in raw:
            self.add("whitespace", path, 1, "CRLF line endings")
        text = raw.decode("utf-8", errors="replace")
        lines = text.split("\n")
        if text and not text.endswith("\n"):
            self.add("whitespace", path, len(lines), "missing final newline")

        is_header = path.suffix in {".hpp", ".h"}
        is_library = rel.startswith(LIBRARY_PREFIX)
        steady_ok = rel.startswith(STEADY_CLOCK_ALLOWED)
        is_hotpath = rel in self.hotpath_files
        if is_hotpath:
            self.hotpath_seen.add(rel)
            # ArenaVector-backed buffers bump a workspace arena, not the
            # heap: resize/reserve on them is sanctioned by declaration.
            arena_names = set(re.findall(r"\bArenaVector<[^>]*>\s+(\w+)", text))
            hot_block_suppressed = False
            hot_next_suppressed = False

        in_block_comment = False
        for idx, line in enumerate(lines, start=1):
            self.check_whitespace(path, idx, line)
            code = line
            if in_block_comment:
                end = code.find("*/")
                if end < 0:
                    continue
                code = code[end + 2 :]
                in_block_comment = False
            # NOLINT audit runs on the raw line: the directive lives in a
            # comment by definition.
            self.check_suppression(path, idx, line)
            code = strip_comments_and_strings(code)
            start = code.find("/*")
            if start >= 0:
                end = code.find("*/", start + 2)
                if end < 0:
                    in_block_comment = True
                    code = code[:start]
                else:
                    code = code[:start] + code[end + 2 :]

            if is_header:
                self.check_header_line(path, idx, code)
            if is_library:
                self.check_determinism(path, idx, code, steady_ok)
                self.check_ownership(path, idx, code)
                self.check_logging(path, idx, code)
            if is_hotpath:
                # Suppression directives live in comments: read the raw
                # line. The rule honors the project's NOLINT-with-reason
                # forms when the named check mentions "hotpath".
                if self.HOT_NOLINT_BEGIN.search(line):
                    hot_block_suppressed = True
                suppressed = (
                    hot_block_suppressed
                    or hot_next_suppressed
                    or self.HOT_NOLINT_LINE.search(line) is not None
                )
                if self.HOT_NOLINT_END.search(line):
                    hot_block_suppressed = False
                hot_next_suppressed = self.HOT_NOLINT_NEXTLINE.search(line) is not None
                if not suppressed:
                    self.check_hotpath(path, idx, code, arena_names)

    def check_whitespace(self, path: Path, idx: int, line: str) -> None:
        stripped = line.rstrip("\r")
        if stripped != stripped.rstrip():
            self.add("whitespace", path, idx, "trailing whitespace")
        if "\t" in stripped:
            self.add("whitespace", path, idx, "tab character in C++ source")

    DETERMINISM_BANNED = [
        (re.compile(r"(?<![\w:])rand\s*\("), "rand(): use the seeded common/rng.hpp"),
        (re.compile(r"\bsrand\s*\("), "srand(): use the seeded common/rng.hpp"),
        (
            re.compile(r"\brandom_device\b"),
            "std::random_device: nondeterministic seed source; use common/rng.hpp",
        ),
        (
            re.compile(r"\bsystem_clock\b"),
            "system_clock: wall-clock read in library code",
        ),
        (
            re.compile(r"\bhigh_resolution_clock\b"),
            "high_resolution_clock: unspecified clock; telemetry uses obs/clock.hpp",
        ),
    ]

    def check_determinism(
        self, path: Path, idx: int, code: str, steady_ok: bool
    ) -> None:
        for pattern, why in self.DETERMINISM_BANNED:
            if pattern.search(code):
                self.add("determinism", path, idx, why)
        if not steady_ok and re.search(r"\bsteady_clock\b", code):
            self.add(
                "determinism",
                path,
                idx,
                "steady_clock outside src/obs+src/runtime: route timing "
                "through obs/clock.hpp",
            )

    NAKED_NEW = re.compile(r"(?<![\w_])new\s+[A-Za-z_(:<]")
    NAKED_DELETE = re.compile(r"(?<![\w_])delete(\s*\[\s*\])?\s+[A-Za-z_(:*]")

    def check_ownership(self, path: Path, idx: int, code: str) -> None:
        if self.NAKED_NEW.search(code):
            self.add(
                "ownership", path, idx, "naked new: use containers/make_unique"
            )
        if self.NAKED_DELETE.search(code) and "= delete" not in code:
            self.add("ownership", path, idx, "naked delete: use owning types")

    LOGGING_BANNED = re.compile(
        r"(?<![\w:])(?:std\s*::\s*)?(printf|puts|putchar|vprintf)\s*\("
    )
    STDOUT_FPRINTF = re.compile(r"\bfprintf\s*\(\s*std(?:out|err)\b")

    def check_logging(self, path: Path, idx: int, code: str) -> None:
        if self.LOGGING_BANNED.search(code) or self.STDOUT_FPRINTF.search(code):
            self.add(
                "logging",
                path,
                idx,
                "stdout/stderr write in library code: return data, or format "
                "with snprintf into a caller buffer",
            )

    IOSTREAM_INCLUDE = re.compile(r"#\s*include\s*<iostream>")

    def check_header_line(self, path: Path, idx: int, code: str) -> None:
        if self.IOSTREAM_INCLUDE.search(code):
            self.add(
                "headers", path, idx, "#include <iostream> in a header"
            )

    NOLINT_ANY = re.compile(r"NOLINT(NEXTLINE|BEGIN|END)?\b")
    NOLINT_WITH_REASON = re.compile(
        r"NOLINT(?:NEXTLINE|BEGIN|END)?\(([^)]+)\)\s*--\s*\S"
    )

    def check_suppression(self, path: Path, idx: int, line: str) -> None:
        if not self.NOLINT_ANY.search(line) or "NOLINT_ANY" in line:
            return
        if not self.NOLINT_WITH_REASON.search(line):
            self.add(
                "suppressions",
                path,
                idx,
                "NOLINT without named check + reason: write "
                "`NOLINT(<check>) -- <why>`",
            )

    HOT_NOLINT_LINE = re.compile(r"NOLINT\([^)]*hotpath[^)]*\)")
    HOT_NOLINT_NEXTLINE = re.compile(r"NOLINTNEXTLINE\([^)]*hotpath[^)]*\)")
    HOT_NOLINT_BEGIN = re.compile(r"NOLINTBEGIN\([^)]*hotpath[^)]*\)")
    HOT_NOLINT_END = re.compile(r"NOLINTEND\([^)]*hotpath[^)]*\)")

    HOT_RESIZE = re.compile(r"([A-Za-z_]\w*(?:(?:\.|->)\w+)*)\s*\.\s*(resize|reserve)\s*\(")
    # Receivers that bump workspace-owned storage, not the heap: leased
    # DetectorWorkspace fields (`ws.*`), the caller-owned `_into` output
    # convention (`out`), and anything spelled as a workspace.
    HOT_SANCTIONED_RECEIVERS = {"ws", "out", "workspace"}

    def check_hotpath(
        self, path: Path, idx: int, code: str, arena_names: set[str]
    ) -> None:
        for _ in self.find_vector_value_decls(code):
            self.add(
                "hotpath",
                path,
                idx,
                "std::vector value construction in a steady-state file: "
                "route buffers through SessionWorkspace/DetectorWorkspace, "
                "or mark cold-path code NOLINT(hyperear-hotpath) -- <why>",
            )
        for m in self.HOT_RESIZE.finditer(code):
            receiver_head = re.split(r"\.|->", m.group(1))[0]
            if receiver_head in self.HOT_SANCTIONED_RECEIVERS:
                continue
            if receiver_head in arena_names or "workspace" in receiver_head:
                continue
            self.add(
                "hotpath",
                path,
                idx,
                f"{m.group(2)} on non-workspace buffer `{m.group(1)}` in a "
                "steady-state file: grow workspace-owned storage instead, "
                "or mark cold-path code NOLINT(hyperear-hotpath) -- <why>",
            )

    @staticmethod
    def find_vector_value_decls(code: str) -> list[int]:
        """Positions of `std::vector<...>` spellings that declare a VALUE
        (local, by-value parameter, by-value return) — i.e. the template is
        followed by an identifier rather than `&`, `*`, `::`, `(` or `{`.
        Angle brackets are counted so nested template arguments parse."""
        hits: list[int] = []
        start = 0
        while True:
            at = code.find("std::vector", start)
            if at < 0:
                return hits
            i = at + len("std::vector")
            while i < len(code) and code[i].isspace():
                i += 1
            if i >= len(code) or code[i] != "<":
                start = at + 1
                continue
            depth = 0
            while i < len(code):
                if code[i] == "<":
                    depth += 1
                elif code[i] == ">":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            i += 1  # past the closing '>'
            while i < len(code) and code[i].isspace():
                i += 1
            if i < len(code) and (code[i].isalpha() or code[i] == "_"):
                hits.append(at)
            start = at + 1

    # --- driver ----------------------------------------------------------

    def run(self) -> int:
        for d in SCAN_DIRS:
            base = self.root / d
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*")):
                if path.suffix in CXX_EXTENSIONS and path.is_file():
                    self.lint_file(path)
        # A manifest entry that matches no scanned file is a silent hole in
        # the allocation guard (renamed file, stale path): fail loudly.
        for missing in sorted(self.hotpath_files - self.hotpath_seen):
            self.add(
                "hotpath",
                self.root / HOTPATH_MANIFEST,
                1,
                f"manifest lists `{missing}` but no such file was scanned",
            )
        # This file states its own rule patterns; it is python, not scanned.
        return 1 if self.findings else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parents[2],
        help="repo root (default: two levels above this script)",
    )
    parser.add_argument("--json", type=Path, help="write findings as JSON")
    args = parser.parse_args()

    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"hyperear_lint: {root} does not look like the repo root", file=sys.stderr)
        return 2

    linter = Linter(root)
    status = linter.run()
    for f in linter.findings:
        print(f"{f['file']}:{f['line']}: [{f['rule']}] {f['message']}")
    print(
        f"hyperear_lint: {len(linter.findings)} finding(s) "
        f"({RULES_HELP})"
    )
    if args.json:
        args.json.write_text(json.dumps(linter.findings, indent=2) + "\n")
    return status


if __name__ == "__main__":
    sys.exit(main())
