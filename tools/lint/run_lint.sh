#!/usr/bin/env bash
# One-shot static-analysis driver (DESIGN.md §11): clang-tidy + cppcheck +
# hyperear_lint + format-check + the thread-safety negative-compile suite,
# merged into LINT_report.json at the repo root. Exit 1 on ANY finding from
# a tool that actually ran, so CI and the `lint` ctest label catch
# regressions; tools that are not installed are reported as "skipped" with
# a machine-readable `skipped_reason` (the container bakes in the compiler
# toolchain, not always the clang extras). Each tool's version string is
# recorded so a report is reproducible evidence, not just a verdict.
#
# Usage: tools/lint/run_lint.sh [BUILD_DIR]
#   BUILD_DIR  a configured build tree with compile_commands.json for
#              clang-tidy (default: build-lint, then build).

set -u

ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
BUILD_DIR="${1:-}"
if [[ -z "${BUILD_DIR}" ]]; then
  for candidate in "${ROOT}/build-lint" "${ROOT}/build"; do
    if [[ -f "${candidate}/compile_commands.json" ]]; then
      BUILD_DIR="${candidate}"
      break
    fi
  done
fi

REPORT="${ROOT}/LINT_report.json"
TMP_DIR="$(mktemp -d)"
trap 'rm -rf "${TMP_DIR}"' EXIT

failures=0

# Each tool writes <tool>.json (findings array, possibly empty) and
# <tool>.meta.json ({status, version[, skipped_reason]}).
write_meta() {  # <name> <status> <version> [skipped_reason]
  python3 - "${TMP_DIR}" "$1" "$2" "$3" "${4:-}" <<'EOF'
import json, sys
tmp, name, status, version, reason = sys.argv[1:6]
meta = {"status": status, "version": version if version else None}
if status == "skipped":
    meta["skipped_reason"] = reason
with open(f"{tmp}/{name}.meta.json", "w") as fh:
    json.dump(meta, fh)
EOF
}

# --- hyperear_lint (always available: python3 + the checked-in script) ----
hl_status=clean
if ! python3 "${ROOT}/tools/lint/hyperear_lint.py" --root "${ROOT}" \
    --json "${TMP_DIR}/hyperear_lint.json" > "${TMP_DIR}/hyperear_lint.txt" 2>&1; then
  hl_status=findings
  failures=1
fi
cat "${TMP_DIR}/hyperear_lint.txt"
[[ -f "${TMP_DIR}/hyperear_lint.json" ]] || echo '[]' > "${TMP_DIR}/hyperear_lint.json"
write_meta hyperear_lint "${hl_status}" "$(python3 --version 2>&1)"

# --- clang-tidy over src/ (needs compile_commands.json) -------------------
echo '[]' > "${TMP_DIR}/clang_tidy.json"
if command -v clang-tidy > /dev/null 2>&1; then
  ct_version="$(clang-tidy --version 2> /dev/null | grep -m1 -i version | sed 's/^ *//')"
  if [[ -n "${BUILD_DIR}" && -f "${BUILD_DIR}/compile_commands.json" ]]; then
    ct_status=clean
    mapfile -t tidy_files < <(find "${ROOT}/src" -name '*.cpp' | sort)
    if ! clang-tidy -p "${BUILD_DIR}" --quiet "${tidy_files[@]}" \
        > "${TMP_DIR}/clang_tidy.txt" 2> /dev/null; then
      ct_status=findings
      failures=1
    fi
    cat "${TMP_DIR}/clang_tidy.txt"
    python3 - "${TMP_DIR}/clang_tidy.txt" "${TMP_DIR}/clang_tidy.json" <<'EOF'
import json, re, sys
findings = []
pattern = re.compile(r"^(?P<file>[^:\s]+):(?P<line>\d+):\d+: (?:warning|error): (?P<msg>.*)$")
with open(sys.argv[1]) as fh:
    for line in fh:
        m = pattern.match(line.strip())
        if m:
            findings.append({"tool": "clang-tidy", "rule": "clang-tidy",
                             "file": m["file"], "line": int(m["line"]),
                             "message": m["msg"]})
json.dump(findings, open(sys.argv[2], "w"), indent=2)
EOF
    write_meta clang_tidy "${ct_status}" "${ct_version}"
  else
    echo "run_lint: clang-tidy present but no compile_commands.json (configure the lint preset first); skipping"
    write_meta clang_tidy skipped "${ct_version}" \
        "no compile_commands.json (configure the lint preset first)"
  fi
else
  echo "run_lint: clang-tidy not installed; skipping (config checked in at .clang-tidy)"
  write_meta clang_tidy skipped "" "clang-tidy not installed"
fi

# --- cppcheck over src/ ---------------------------------------------------
echo '[]' > "${TMP_DIR}/cppcheck.json"
if command -v cppcheck > /dev/null 2>&1; then
  cc_status=clean
  if ! cppcheck --enable=warning,performance,portability --inline-suppr \
      --suppressions-list="${ROOT}/tools/lint/cppcheck-suppressions.txt" \
      --error-exitcode=1 --std=c++20 --language=c++ -I "${ROOT}/src" \
      --template='{file}:{line}: [{id}] {message}' --quiet \
      "${ROOT}/src" > "${TMP_DIR}/cppcheck.txt" 2>&1; then
    cc_status=findings
    failures=1
  fi
  cat "${TMP_DIR}/cppcheck.txt"
  python3 - "${TMP_DIR}/cppcheck.txt" "${TMP_DIR}/cppcheck.json" <<'EOF'
import json, re, sys
findings = []
pattern = re.compile(r"^(?P<file>[^:\s]+):(?P<line>\d+): \[(?P<id>[^\]]+)\] (?P<msg>.*)$")
with open(sys.argv[1]) as fh:
    for line in fh:
        m = pattern.match(line.strip())
        if m:
            findings.append({"tool": "cppcheck", "rule": m["id"],
                             "file": m["file"], "line": int(m["line"]),
                             "message": m["msg"]})
json.dump(findings, open(sys.argv[2], "w"), indent=2)
EOF
  write_meta cppcheck "${cc_status}" "$(cppcheck --version 2> /dev/null)"
else
  echo "run_lint: cppcheck not installed; skipping"
  write_meta cppcheck skipped "" "cppcheck not installed"
fi

# --- format-check ---------------------------------------------------------
echo '[]' > "${TMP_DIR}/format.json"
if command -v clang-format > /dev/null 2>&1; then
  fc_status=clean
  mapfile -t fmt_files < <(find "${ROOT}/src" "${ROOT}/tests" "${ROOT}/bench" \
      "${ROOT}/tools" "${ROOT}/examples" \( -name '*.cpp' -o -name '*.hpp' \) | sort)
  if ! clang-format --dry-run -Werror --style=file "${fmt_files[@]}" \
      > "${TMP_DIR}/format.txt" 2>&1; then
    fc_status=findings
    failures=1
  fi
  cat "${TMP_DIR}/format.txt"
  python3 - "${TMP_DIR}/format.txt" "${TMP_DIR}/format.json" <<'EOF'
import json, re, sys
findings = []
pattern = re.compile(r"^(?P<file>[^:\s]+):(?P<line>\d+):\d+: (?:warning|error): (?P<msg>.*)$")
with open(sys.argv[1]) as fh:
    for line in fh:
        m = pattern.match(line.strip())
        if m:
            findings.append({"tool": "clang-format", "rule": "format",
                             "file": m["file"], "line": int(m["line"]),
                             "message": m["msg"]})
json.dump(findings, open(sys.argv[2], "w"), indent=2)
EOF
  write_meta format_check "${fc_status}" "$(clang-format --version 2> /dev/null | sed 's/^ *//')"
else
  echo "run_lint: clang-format not installed; skipping (whitespace floor enforced by hyperear_lint)"
  write_meta format_check skipped "" "clang-format not installed"
fi

# --- thread-safety negative-compile suite (needs clang++) -----------------
echo '[]' > "${TMP_DIR}/thread_safety.json"
"${ROOT}/tools/lint/thread_safety_negative.sh" > "${TMP_DIR}/thread_safety.txt" 2>&1
ts_rc=$?
cat "${TMP_DIR}/thread_safety.txt"
if [[ ${ts_rc} -eq 77 ]]; then
  write_meta thread_safety_negative skipped "" \
      "clang++ not installed (set HE_CLANGXX to override)"
elif [[ ${ts_rc} -eq 0 ]]; then
  write_meta thread_safety_negative clean \
      "$("${HE_CLANGXX:-clang++}" --version 2> /dev/null | head -n1)"
else
  failures=1
  python3 - "${TMP_DIR}/thread_safety.txt" "${TMP_DIR}/thread_safety.json" <<'EOF'
import json, sys
message = open(sys.argv[1]).read().strip() or "negative-compile suite failed"
json.dump([{"tool": "thread-safety-negative", "rule": "negative-compile",
            "file": "tests/negative_compile", "line": 0,
            "message": message[-2000:]}], open(sys.argv[2], "w"), indent=2)
EOF
  write_meta thread_safety_negative findings \
      "$("${HE_CLANGXX:-clang++}" --version 2> /dev/null | head -n1)"
fi

# --- merge ----------------------------------------------------------------
python3 - "${REPORT}" "${TMP_DIR}" <<'EOF'
import json, sys
report_path, tmp = sys.argv[1:3]
TOOLS = [("hyperear_lint", "hyperear_lint"),
         ("clang-tidy", "clang_tidy"),
         ("cppcheck", "cppcheck"),
         ("format-check", "format_check"),
         ("thread-safety-negative", "thread_safety_negative")]
FINDING_FILES = ["hyperear_lint", "clang_tidy", "cppcheck", "format",
                 "thread_safety"]
tools = {}
for name, stem in TOOLS:
    with open(f"{tmp}/{stem}.meta.json") as fh:
        tools[name] = json.load(fh)
findings = []
for stem in FINDING_FILES:
    with open(f"{tmp}/{stem}.json") as fh:
        findings += json.load(fh)
report = {"tools": tools, "finding_count": len(findings), "findings": findings}
with open(report_path, "w") as fh:
    json.dump(report, fh, indent=2)
    fh.write("\n")
summary = ", ".join(f"{name}={meta['status']}" for name, meta in tools.items())
print(f"run_lint: wrote {report_path} ({len(findings)} finding(s); {summary})")
EOF

exit "${failures}"
