#!/usr/bin/env bash
# One-shot static-analysis driver (DESIGN.md §11): clang-tidy + cppcheck +
# hyperear_lint + format-check, merged into LINT_report.json at the repo
# root. Exit 1 on ANY finding so CI and the `lint` ctest label catch
# regressions; tools that are not installed are reported as "skipped" (the
# container bakes in the compiler toolchain, not always the clang extras).
#
# Usage: tools/lint/run_lint.sh [BUILD_DIR]
#   BUILD_DIR  a configured build tree with compile_commands.json for
#              clang-tidy (default: build-lint, then build).

set -u

ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
BUILD_DIR="${1:-}"
if [[ -z "${BUILD_DIR}" ]]; then
  for candidate in "${ROOT}/build-lint" "${ROOT}/build"; do
    if [[ -f "${candidate}/compile_commands.json" ]]; then
      BUILD_DIR="${candidate}"
      break
    fi
  done
fi

REPORT="${ROOT}/LINT_report.json"
TMP_DIR="$(mktemp -d)"
trap 'rm -rf "${TMP_DIR}"' EXIT

failures=0

# Each tool writes: a findings JSON array (possibly empty) and a status
# string (clean | findings | skipped).

# --- hyperear_lint (always available: python3 + the checked-in script) ----
hl_status=clean
if ! python3 "${ROOT}/tools/lint/hyperear_lint.py" --root "${ROOT}" \
    --json "${TMP_DIR}/hyperear_lint.json" > "${TMP_DIR}/hyperear_lint.txt" 2>&1; then
  hl_status=findings
  failures=1
fi
cat "${TMP_DIR}/hyperear_lint.txt"
[[ -f "${TMP_DIR}/hyperear_lint.json" ]] || echo '[]' > "${TMP_DIR}/hyperear_lint.json"

# --- clang-tidy over src/ (needs compile_commands.json) -------------------
ct_status=skipped
echo '[]' > "${TMP_DIR}/clang_tidy.json"
if command -v clang-tidy > /dev/null 2>&1; then
  if [[ -n "${BUILD_DIR}" && -f "${BUILD_DIR}/compile_commands.json" ]]; then
    ct_status=clean
    mapfile -t tidy_files < <(find "${ROOT}/src" -name '*.cpp' | sort)
    if ! clang-tidy -p "${BUILD_DIR}" --quiet "${tidy_files[@]}" \
        > "${TMP_DIR}/clang_tidy.txt" 2> /dev/null; then
      ct_status=findings
      failures=1
    fi
    cat "${TMP_DIR}/clang_tidy.txt"
    python3 - "${TMP_DIR}/clang_tidy.txt" "${TMP_DIR}/clang_tidy.json" <<'EOF'
import json, re, sys
findings = []
pattern = re.compile(r"^(?P<file>[^:\s]+):(?P<line>\d+):\d+: (?:warning|error): (?P<msg>.*)$")
with open(sys.argv[1]) as fh:
    for line in fh:
        m = pattern.match(line.strip())
        if m:
            findings.append({"tool": "clang-tidy", "rule": "clang-tidy",
                             "file": m["file"], "line": int(m["line"]),
                             "message": m["msg"]})
json.dump(findings, open(sys.argv[2], "w"), indent=2)
EOF
  else
    echo "run_lint: clang-tidy present but no compile_commands.json (configure the lint preset first); skipping"
  fi
else
  echo "run_lint: clang-tidy not installed; skipping (config checked in at .clang-tidy)"
fi

# --- cppcheck over src/ ---------------------------------------------------
cc_status=skipped
echo '[]' > "${TMP_DIR}/cppcheck.json"
if command -v cppcheck > /dev/null 2>&1; then
  cc_status=clean
  if ! cppcheck --enable=warning,performance,portability --inline-suppr \
      --suppressions-list="${ROOT}/tools/lint/cppcheck-suppressions.txt" \
      --error-exitcode=1 --std=c++20 --language=c++ -I "${ROOT}/src" \
      --template='{file}:{line}: [{id}] {message}' --quiet \
      "${ROOT}/src" > "${TMP_DIR}/cppcheck.txt" 2>&1; then
    cc_status=findings
    failures=1
  fi
  cat "${TMP_DIR}/cppcheck.txt"
  python3 - "${TMP_DIR}/cppcheck.txt" "${TMP_DIR}/cppcheck.json" <<'EOF'
import json, re, sys
findings = []
pattern = re.compile(r"^(?P<file>[^:\s]+):(?P<line>\d+): \[(?P<id>[^\]]+)\] (?P<msg>.*)$")
with open(sys.argv[1]) as fh:
    for line in fh:
        m = pattern.match(line.strip())
        if m:
            findings.append({"tool": "cppcheck", "rule": m["id"],
                             "file": m["file"], "line": int(m["line"]),
                             "message": m["msg"]})
json.dump(findings, open(sys.argv[2], "w"), indent=2)
EOF
else
  echo "run_lint: cppcheck not installed; skipping"
fi

# --- format-check ---------------------------------------------------------
fc_status=skipped
echo '[]' > "${TMP_DIR}/format.json"
if command -v clang-format > /dev/null 2>&1; then
  fc_status=clean
  mapfile -t fmt_files < <(find "${ROOT}/src" "${ROOT}/tests" "${ROOT}/bench" \
      "${ROOT}/tools" "${ROOT}/examples" \( -name '*.cpp' -o -name '*.hpp' \) | sort)
  if ! clang-format --dry-run -Werror --style=file "${fmt_files[@]}" \
      > "${TMP_DIR}/format.txt" 2>&1; then
    fc_status=findings
    failures=1
  fi
  cat "${TMP_DIR}/format.txt"
  python3 - "${TMP_DIR}/format.txt" "${TMP_DIR}/format.json" <<'EOF'
import json, re, sys
findings = []
pattern = re.compile(r"^(?P<file>[^:\s]+):(?P<line>\d+):\d+: (?:warning|error): (?P<msg>.*)$")
with open(sys.argv[1]) as fh:
    for line in fh:
        m = pattern.match(line.strip())
        if m:
            findings.append({"tool": "clang-format", "rule": "format",
                             "file": m["file"], "line": int(m["line"]),
                             "message": m["msg"]})
json.dump(findings, open(sys.argv[2], "w"), indent=2)
EOF
else
  echo "run_lint: clang-format not installed; skipping (whitespace floor enforced by hyperear_lint)"
fi

# --- merge ----------------------------------------------------------------
python3 - "${REPORT}" "${hl_status}" "${ct_status}" "${cc_status}" "${fc_status}" \
    "${TMP_DIR}" <<'EOF'
import json, sys
report_path, hl, ct, cc, fc, tmp = sys.argv[1:7]
def load(name):
    with open(f"{tmp}/{name}.json") as fh:
        return json.load(fh)
findings = load("hyperear_lint") + load("clang_tidy") + load("cppcheck") + load("format")
report = {
    "tools": {
        "hyperear_lint": hl,
        "clang-tidy": ct,
        "cppcheck": cc,
        "format-check": fc,
    },
    "finding_count": len(findings),
    "findings": findings,
}
with open(report_path, "w") as fh:
    json.dump(report, fh, indent=2)
    fh.write("\n")
print(f"run_lint: wrote {report_path} ({len(findings)} finding(s); "
      f"tidy={ct}, cppcheck={cc}, format={fc}, hyperear_lint={hl})")
EOF

exit "${failures}"
