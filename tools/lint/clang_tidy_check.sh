#!/usr/bin/env bash
# ctest entry `lint.clang_tidy`: clang-tidy over every library TU using the
# checked-in .clang-tidy, against the compile database of the build tree
# passed as $1. Exit 77 (ctest SKIP_RETURN_CODE) where clang-tidy is not
# installed; the escalated -W...-Werror compile covers the narrowing checks
# meanwhile.
set -u
ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
BUILD_DIR="${1:-${ROOT}/build-lint}"
if ! command -v clang-tidy > /dev/null 2>&1; then
  echo "clang_tidy_check: clang-tidy not installed; skipping (.clang-tidy is checked in)"
  exit 77
fi
if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "clang_tidy_check: ${BUILD_DIR}/compile_commands.json missing; configure with the lint preset"
  exit 1
fi
mapfile -t files < <(find "${ROOT}/src" -name '*.cpp' | sort)
exec clang-tidy -p "${BUILD_DIR}" --quiet "${files[@]}"
