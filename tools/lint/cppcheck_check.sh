#!/usr/bin/env bash
# ctest entry `lint.cppcheck`: cppcheck over src/ with the checked-in
# suppressions file (each suppression carries a written reason). Exit 77
# (ctest SKIP_RETURN_CODE) where cppcheck is not installed.
set -u
ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
if ! command -v cppcheck > /dev/null 2>&1; then
  echo "cppcheck_check: cppcheck not installed; skipping"
  exit 77
fi
exec cppcheck --enable=warning,performance,portability --inline-suppr \
  --suppressions-list="${ROOT}/tools/lint/cppcheck-suppressions.txt" \
  --error-exitcode=1 --std=c++20 --language=c++ -I "${ROOT}/src" \
  --template='{file}:{line}: [{id}] {message}' --quiet "${ROOT}/src"
