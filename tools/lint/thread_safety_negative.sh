#!/usr/bin/env bash
# Drives the thread-safety negative-compile suite (tests/negative_compile):
# configures the standalone project with clang++, which runs every
# try_compile check at configure time. Registered as ctest entry
# `lint.thread_safety_negative` (label lint, SKIP_RETURN_CODE 77).
#
# The suite is clang-only — the HE_* macros expand to nothing elsewhere, so
# under GCC every case (mis)compiles fine and there is nothing to check.
# Exit 77 (ctest SKIP) when no clang++ is available; set HE_CLANGXX to point
# at a specific binary.
set -u

ROOT="$(cd "$(dirname "$0")/../.." && pwd)"

CLANGXX="${HE_CLANGXX:-}"
if [[ -z "${CLANGXX}" ]]; then
  CLANGXX="$(command -v clang++ || true)"
fi
if [[ -z "${CLANGXX}" ]]; then
  echo "thread_safety_negative: clang++ not found (set HE_CLANGXX to override); skipping"
  exit 77
fi

BUILD_DIR="$(mktemp -d)"
trap 'rm -rf "${BUILD_DIR}"' EXIT

if ! cmake -S "${ROOT}/tests/negative_compile" -B "${BUILD_DIR}" \
    -DCMAKE_CXX_COMPILER="${CLANGXX}" > "${BUILD_DIR}/configure.log" 2>&1; then
  cat "${BUILD_DIR}/configure.log"
  echo "thread_safety_negative: FAILED (see case diagnostics above)"
  exit 1
fi

grep -E '^-- (case |thread-safety)' "${BUILD_DIR}/configure.log" || true
exit 0
