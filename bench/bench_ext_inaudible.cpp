/// Extension bench (paper Section IX future work): replace the audible
/// 2-6.4 kHz chirp with a near-ultrasonic 17-21.2 kHz one. The phone mic's
/// frequency response rolls off across that band (modeled per AdcSpec), so
/// the inaudible beacon pays in SNR and effective bandwidth. This bench
/// quantifies the cost at several ranges on the ruler.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/pipeline.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace hyperear;
  const int n_trials = bench::trials(6);

  std::printf("=== Inaudible (17-21.2 kHz) vs audible (2-6.4 kHz) beacon ===\n");
  std::printf("mic response: -3 dB at 19 kHz (2nd order rolloff)\n\n");
  for (const bool inaudible : {false, true}) {
    for (double range : {2.0, 5.0}) {
      std::vector<double> errors;
      int invalid = 0;
      for (int t = 0; t < n_trials; ++t) {
        sim::ScenarioConfig c;
        c.phone = sim::galaxy_s4();
        c.environment = sim::meeting_room_quiet();
        c.speaker = inaudible ? sim::inaudible_beacon() : sim::audible_beacon();
        c.speaker_distance = range;
        c.speaker_height = 1.3;
        c.phone_height = 1.3;
        c.slides_per_stature = 5;
        c.calibration_duration = 3.0;
        c.hold_duration = 0.7;
        c.jitter = sim::ruler_jitter();
        Rng rng(static_cast<std::uint64_t>(2300 + t * 59) + static_cast<std::uint64_t>(range * 7) +
                (inaudible ? 4000 : 0));
        const sim::Session s = sim::make_localization_session(c, rng);
        const auto fix = core::try_localize(s);
        if (!fix.has_value() || !fix->valid) {
          ++invalid;
          continue;
        }
        errors.push_back(core::localization_error(*fix, s));
      }
      const std::string label = std::string(inaudible ? "inaudible" : "audible  ") +
                                " @" + std::to_string(int(range)) + "m";
      bench::print_summary(label, errors);
      if (invalid > 0) std::printf("  (%d/%d sessions failed to localize)\n", invalid, n_trials);
    }
  }
  std::printf("\nThe inaudible band still works but degrades with range - the\n"
              "signal-distortion concern of the paper's future work, quantified.\n");
  return 0;
}
