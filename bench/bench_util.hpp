#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/cdf.hpp"
#include "common/stats.hpp"

/// @file bench_util.hpp
/// Shared helpers for the figure/table reproduction harnesses. Each bench
/// binary prints the series the corresponding paper figure plots: CDF rows
/// on a fixed error grid plus mean / 90th-percentile summary lines, so
/// EXPERIMENTS.md can record paper-vs-measured side by side.

namespace hyperear::bench {

/// Number of Monte-Carlo trials per configuration. Controlled by the
/// HYPEREAR_TRIALS environment variable (single-core machines want small
/// defaults; CI or a final run can raise it).
inline int trials(int fallback) {
  if (const char* env = std::getenv("HYPEREAR_TRIALS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback;
}

/// Print one labelled CDF as "x F(x)" rows (grid of `points` values up to
/// `x_max`), followed by a summary line. Mirrors the paper's figure axes
/// (error in meters on x, CDF on y).
inline void print_cdf(const std::string& label, const std::vector<double>& errors,
                      double x_max, std::size_t points = 21) {
  if (errors.empty()) {
    std::printf("# CDF %s: NO DATA\n", label.c_str());
    return;
  }
  const EmpiricalCdf cdf(errors);
  std::fputs(cdf.to_table(x_max, points, label).c_str(), stdout);
  const Summary s = summarize(errors);
  std::printf("# summary %-28s n=%zu mean=%.1fcm median=%.1fcm p90=%.1fcm max=%.1fcm\n",
              label.c_str(), s.count, 100.0 * s.mean, 100.0 * s.median, 100.0 * s.p90,
              100.0 * s.max);
}

/// Print only the summary line (for table-style outputs).
inline void print_summary(const std::string& label, const std::vector<double>& errors) {
  if (errors.empty()) {
    std::printf("%-32s NO DATA\n", label.c_str());
    return;
  }
  const Summary s = summarize(errors);
  std::printf("%-32s n=%-3zu mean=%7.1fcm median=%7.1fcm p90=%7.1fcm max=%8.1fcm\n",
              label.c_str(), s.count, 100.0 * s.mean, 100.0 * s.median, 100.0 * s.p90,
              100.0 * s.max);
}

}  // namespace hyperear::bench
