/// Reproduces the paper's Section II-C analysis: Eq. 2 (number of
/// distinguishable hyperbolas) and the naive two-pose localization errors
/// ("18.6 cm at 1 m, 266.7 cm at 5 m" for a Galaxy S4), plus the Fig. 3
/// trend of ambiguity growing with distance.

#include <cstdio>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/naive.hpp"
#include "geom/hyperbola.hpp"

int main() {
  using namespace hyperear;
  const int n_trials = bench::trials(200);

  std::printf("=== Eq. 2: distinguishable hyperbolas N = floor(2*D*fs/S) ===\n");
  std::printf("Galaxy S4    (D=13.66cm): N = %d   (paper: 35)\n",
              geom::distinguishable_hyperbola_count(kGalaxyS4MicSeparation,
                                                    kAudioSampleRate, kSpeedOfSound));
  std::printf("Galaxy Note3 (D=15.12cm): N = %d\n",
              geom::distinguishable_hyperbola_count(kGalaxyNote3MicSeparation,
                                                    kAudioSampleRate, kSpeedOfSound));
  std::printf("Slide aperture D'=55cm  : N = %d   (the augmentation's win)\n\n",
              geom::distinguishable_hyperbola_count(0.55, kAudioSampleRate, kSpeedOfSound));

  std::printf("=== Naive two-pose localization vs range (S4, quantized TDoA) ===\n");
  std::printf("Paper reference points: up to 18.6cm at 1m, up to 266.7cm at 5m.\n");
  core::NaiveOptions opts;  // S4 defaults
  for (double range : {1.0, 2.0, 3.0, 5.0, 7.0}) {
    Rng rng(900 + static_cast<std::uint64_t>(range * 10));
    const Summary s = core::naive_error_study(range, n_trials, rng, opts);
    std::printf("range %.0fm: mean=%7.1fcm  p90=%7.1fcm  max=%7.1fcm  analytic~%7.1fcm\n",
                range, 100.0 * s.mean, 100.0 * s.p90, 100.0 * s.max,
                100.0 * core::naive_range_ambiguity(range, opts));
  }

  std::printf("\n=== Same scheme with the HyperEar-sized aperture (D'=55cm move) ===\n");
  core::NaiveOptions wide = opts;
  wide.move_distance = 0.55;
  for (double range : {1.0, 5.0, 7.0}) {
    Rng rng(950 + static_cast<std::uint64_t>(range * 10));
    const Summary s = core::naive_error_study(range, n_trials, rng, wide);
    std::printf("range %.0fm: mean=%7.1fcm  p90=%7.1fcm\n", range, 100.0 * s.mean,
                100.0 * s.p90);
  }
  return 0;
}
