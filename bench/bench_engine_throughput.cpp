/// Batch-engine throughput: sessions/sec of the full ASP -> MSP -> TTL
/// pipeline at 1, 2, 4, 8 and hardware-concurrency worker threads over one
/// shared pool of pre-rendered sessions. Sessions are independent pure
/// functions of their inputs, so the engine must deliver (a) near-linear
/// scaling on multi-core hardware and (b) bit-identical per-session
/// results at every thread count — both are checked and printed.
///
/// The first row ("no-ctx") runs the pipeline serially WITHOUT the shared
/// PipelineContext, rebuilding every DSP plan (band-pass taps, chirp
/// reference, reference FFT spectrum) per session — the cost the engine's
/// plan cache removes. Engine rows must match it bit-for-bit.
///
/// The "engine-steady-state" row re-runs the whole batch on an engine that
/// already served it once, so every worker holds a warm SessionWorkspace:
/// its bytes_allocated column is the engine's true per-session allocator
/// traffic after warm-up (the cold rows above pay the one-time buffer
/// growth), and its results must also match the baseline bit-for-bit.
///
/// HYPEREAR_TRIALS scales the batch size (default 8 sessions).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <set>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "bench_util.hpp"
#include "core/pipeline.hpp"
#include "core/pipeline_context.hpp"
#include "core/session_workspace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/engine.hpp"
#include "sim/scenario.hpp"

HYPEREAR_DEFINE_ALLOC_COUNTER()

namespace {

using namespace hyperear;
using Clock = std::chrono::steady_clock;

std::vector<sim::Session> make_batch(std::size_t count) {
  sim::ScenarioConfig c;
  c.speaker_distance = 5.0;
  c.slides_per_stature = 3;
  c.calibration_duration = 3.0;
  c.jitter = sim::hand_jitter();
  std::vector<sim::Session> sessions;
  sessions.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Rng rng(4200 + i * 17);
    sessions.push_back(sim::make_localization_session(c, rng));
  }
  return sessions;
}

bool identical(const core::LocalizationResult& a, const core::LocalizationResult& b) {
  return a.valid == b.valid && a.slides_used == b.slides_used &&
         a.estimated_position.x == b.estimated_position.x &&
         a.estimated_position.y == b.estimated_position.y && a.range == b.range &&
         a.estimated_period == b.estimated_period && a.sfo_ppm == b.sfo_ppm;
}

}  // namespace

int main() {
  const std::size_t n_sessions = static_cast<std::size_t>(bench::trials(8));
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("=== Batch-engine throughput (%zu sessions, %u hardware threads) ===\n",
              n_sessions, hw);
  std::printf("rendering %zu sessions...\n", n_sessions);
  const std::vector<sim::Session> sessions = make_batch(n_sessions);

  std::set<std::size_t> counts = {1, 2, 4, 8, hw};
  std::vector<runtime::SessionReport> baseline;
  double baseline_rate = 0.0;
  bool all_identical = true;
  std::vector<bench::BenchRow> rows;
  const auto push_row = [&rows, n_sessions](const std::string& variant, double seconds,
                                            std::size_t bytes) {
    bench::BenchRow row;
    row.op = "engine_localize_all";
    row.variant = variant;
    row.n = n_sessions;
    row.ns_per_op = seconds * 1e9 / static_cast<double>(n_sessions);
    row.bytes_allocated = bytes / n_sessions;
    rows.push_back(row);
  };

  std::printf("%8s %10s %12s %9s %6s %13s\n", "threads", "wall s", "sessions/s",
              "speedup", "ok", "identical");
  {
    // Per-session plan construction (the pre-PipelineContext behaviour):
    // serial try_localize with no shared context.
    const std::size_t bytes0 = bench::allocated_bytes();
    const Clock::time_point t0 = Clock::now();
    std::size_t ok = 0;
    baseline.resize(n_sessions);
    for (std::size_t i = 0; i < n_sessions; ++i) {
      auto outcome = core::try_localize(sessions[i], {}, &baseline[i].metrics);
      if (outcome.has_value()) {
        baseline[i].result = *std::move(outcome);
        baseline[i].status = baseline[i].result.valid
                                 ? runtime::SessionStatus::ok
                                 : runtime::SessionStatus::no_solution;
      }
      if (baseline[i].status == runtime::SessionStatus::ok) ++ok;
    }
    const double seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    baseline_rate = static_cast<double>(n_sessions) / seconds;
    std::printf("%8s %10.2f %12.2f %8.2fx %6zu %13s\n", "no-ctx", seconds,
                baseline_rate, 1.0, ok, "(ref)");
    push_row("no-ctx-serial", seconds, bench::allocated_bytes() - bytes0);
  }

  for (const std::size_t threads : counts) {
    runtime::BatchEngine engine({}, threads);
    const std::size_t bytes0 = bench::allocated_bytes();
    const Clock::time_point t0 = Clock::now();
    const std::vector<runtime::SessionReport> reports = engine.localize_all(sessions);
    const double seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    const double rate = static_cast<double>(n_sessions) / seconds;
    push_row("engine-threads-" + std::to_string(threads), seconds,
             bench::allocated_bytes() - bytes0);

    std::size_t ok = 0;
    for (const runtime::SessionReport& r : reports) {
      if (r.status == runtime::SessionStatus::ok) ++ok;
    }
    bool same = true;
    for (std::size_t i = 0; i < reports.size(); ++i) {
      same = same && identical(reports[i].result, baseline[i].result);
    }
    all_identical = all_identical && same;
    std::printf("%8zu %10.2f %12.2f %8.2fx %6zu %13s\n", threads, seconds, rate,
                rate / baseline_rate, ok, same ? "yes" : "MISMATCH");
  }

  {
    // Steady-state allocator traffic: batch 1 warms every worker's leased
    // SessionWorkspace (and the sharded plan cache); batch 2 on the SAME
    // engine is what a long-running service pays per session.
    runtime::BatchEngine engine({}, 1);
    (void)engine.localize_all(sessions);  // warm-up batch
    const std::size_t bytes0 = bench::allocated_bytes();
    const Clock::time_point t0 = Clock::now();
    const std::vector<runtime::SessionReport> reports = engine.localize_all(sessions);
    const double seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    const std::size_t steady_bytes = bench::allocated_bytes() - bytes0;
    push_row("engine-steady-state", seconds, steady_bytes);

    bool same = true;
    for (std::size_t i = 0; i < reports.size(); ++i) {
      same = same && identical(reports[i].result, baseline[i].result);
    }
    all_identical = all_identical && same;
    std::printf("\nsteady state (warm workspaces, 1 thread): %.2f s, "
                "%.1f KiB allocated/session, results %s\n",
                seconds,
                static_cast<double>(steady_bytes / n_sessions) / 1024.0,
                same ? "bit-identical" : "MISMATCH");
  }

  // Observability overhead (the bench_obs_overhead rows): the same serial
  // shared-context session loop with the metrics registry + tracer off vs
  // on. Serial so nothing but the instrumentation differs between the two
  // timings; the acceptance budget is <2% and the results must stay
  // bit-identical (obs observes, never steers).
  {
    const core::PipelineConfig config;
    const core::PipelineContext ctx(config, sessions[0].prior.chirp,
                                    sessions[0].audio.sample_rate);
    core::SessionWorkspace workspace;
    std::vector<core::LocalizationResult> plain(n_sessions);
    const Clock::time_point t0 = Clock::now();
    for (std::size_t i = 0; i < n_sessions; ++i) {
      auto outcome = core::try_localize(sessions[i], config, ctx, workspace);
      if (outcome.has_value()) plain[i] = *std::move(outcome);
    }
    const double off_s = std::chrono::duration<double>(Clock::now() - t0).count();

    obs::MetricsRegistry registry;
    obs::Tracer tracer;
    std::vector<core::LocalizationResult> traced(n_sessions);
    const Clock::time_point t1 = Clock::now();
    for (std::size_t i = 0; i < n_sessions; ++i) {
      const obs::ObsContext obs{&registry, &tracer, i + 1};
      auto outcome =
          core::try_localize(sessions[i], config, ctx, workspace, nullptr, &obs);
      if (outcome.has_value()) traced[i] = *std::move(outcome);
    }
    const double on_s = std::chrono::duration<double>(Clock::now() - t1).count();

    bool obs_identical = true;
    for (std::size_t i = 0; i < n_sessions; ++i) {
      obs_identical = obs_identical && identical(plain[i], traced[i]);
    }
    all_identical = all_identical && obs_identical;
    const double overhead_pct = (on_s / off_s - 1.0) * 100.0;
    std::printf("\nobs overhead (serial, shared ctx): off %.3f s, on %.3f s -> "
                "%+.2f%% (budget <2%%), results %s\n",
                off_s, on_s, overhead_pct,
                obs_identical ? "bit-identical" : "MISMATCH");
    bench::BenchRow off_row;
    off_row.op = "obs_overhead";
    off_row.variant = "registry-off";
    off_row.n = n_sessions;
    off_row.ns_per_op = off_s * 1e9 / static_cast<double>(n_sessions);
    rows.push_back(off_row);
    bench::BenchRow on_row = off_row;
    on_row.variant = "registry-on";
    on_row.ns_per_op = on_s * 1e9 / static_cast<double>(n_sessions);
    rows.push_back(on_row);
  }

  bench::write_bench_json("BENCH_engine.json", rows);
  std::printf("\nresults bit-identical to per-session plans at every thread "
              "count: %s\n",
              all_identical ? "yes" : "NO — shared-context or determinism bug");
  if (hw < 4) {
    std::printf("note: only %u hardware thread(s) available; speedup beyond %u\n"
                "requires multi-core hardware (workers time-slice here).\n", hw, hw);
  }
  return all_identical ? 0 : 1;
}
