/// Reproduces the paper's Fig. 7: the inter-microphone TDoA as a function
/// of the roll angle alpha during a full rotation sweep, measured by the
/// real pipeline (render -> band-pass -> matched filter -> pairing) on a
/// simulated Galaxy S4 five meters from the beacon. Also reports the SDF
/// zero-crossing precision, which justifies the scenario model's
/// in-direction error prior (~1 degree).

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/math_util.hpp"
#include "common/units.hpp"
#include "core/sdf.hpp"
#include "imu/preprocess.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace hyperear;

  sim::ScenarioConfig config;
  config.phone = sim::galaxy_s4();
  config.environment = sim::meeting_room_quiet();
  config.speaker_distance = 5.0;
  config.speaker_height = 1.3;
  config.phone_height = 1.3;
  config.jitter = sim::ruler_jitter();
  config.randomize_placement = false;

  // Sweep: start with the speaker along body +y (alpha = 0) and rotate a
  // full turn. Body +y points at the speaker (world +x) at yaw -90 deg.
  const double yaw_start = -kPi / 2.0;
  const double yaw_end = yaw_start - 2.0 * kPi;  // alpha goes 0 -> 360
  Rng rng(7007);
  const sim::Session s =
      sim::make_rotation_sweep_session(config, yaw_start, yaw_end, 16.0, rng);
  const core::AspResult asp = core::preprocess_audio(s.audio, s.prior.chirp, 0.2, 1.0);
  const imu::MotionSignals motion = imu::preprocess(s.imu);
  const core::SdfResult sdf = core::find_direction(asp, motion);

  std::printf("=== Fig. 7: TDoA vs alpha (S4, 5 m; paper range +-0.44 ms) ===\n");
  std::printf("%10s %12s %14s\n", "alpha", "TDoA (ms)", "model (ms)");
  const double d = config.phone.mic_separation;
  for (const core::TdoaSample& ts : sdf.samples) {
    if (ts.time_s < 1.2 || ts.time_s > 17.0) continue;
    const double yaw = yaw_start + core::integrated_yaw_at(motion, ts.time_s);
    // alpha: angle from body +y to the speaker direction (world +x),
    // increasing clockwise (the phone rotates clockwise): alpha = -90-yaw.
    const double alpha = wrap_angle_2pi(-kPi / 2.0 - yaw);
    const double model = -d * std::cos(alpha) / kSpeedOfSound;
    std::printf("%8.1f deg %10.4f %12.4f\n", rad2deg(alpha), 1e3 * ts.tdoa_s,
                1e3 * model);
  }

  // Zero-crossing (in-direction) precision over repeated sweeps.
  std::printf("\n=== SDF in-direction precision over %d sweeps ===\n",
              bench::trials(10));
  std::vector<double> errors_deg;
  for (int t = 0; t < bench::trials(10); ++t) {
    Rng r2(static_cast<std::uint64_t>(7100 + t));
    const sim::Session sw =
        sim::make_rotation_sweep_session(config, deg2rad(40.0), deg2rad(-40.0), 7.0, r2);
    const core::AspResult a2 = core::preprocess_audio(sw.audio, sw.prior.chirp, 0.2, 1.0);
    const imu::MotionSignals m2 = imu::preprocess(sw.imu);
    const core::SdfResult r = core::find_direction(a2, m2);
    if (!r.found) continue;
    // True in-direction yaw is 0; the estimate is relative to +40 deg.
    const double est_yaw = deg2rad(40.0) + r.yaw_rad;
    errors_deg.push_back(std::abs(rad2deg(est_yaw)));
  }
  if (errors_deg.empty()) {
    std::printf("no crossings found\n");
  } else {
    const Summary sum = summarize(errors_deg);
    std::printf("|in-direction error|: n=%zu mean=%.2f deg median=%.2f deg p90=%.2f deg\n",
                sum.count, sum.mean, sum.median, sum.p90);
    std::printf("(the scenario model's in_direction_error_deg prior defaults to 1.0)\n");
  }
  return 0;
}
