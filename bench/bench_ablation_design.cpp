/// Ablation bench for the design choices DESIGN.md Section 5 calls out:
///   1. sub-sample peak refinement (parabolic interpolation),
///   2. SFO correction (estimated vs nominal beacon period),
///   3. linear drift removal (Eq. 4),
///   4. gyro rotation-error correction (the Fig. 5 architecture box),
///   5. multi-slide aggregation depth (1 vs 3 vs 5 slides).
/// Each row reports the 2D error at 6 m (hand-held) with exactly one knob
/// changed from the full pipeline.

#include <cstdio>
#include <functional>
#include <vector>

#include "bench_util.hpp"
#include "core/pipeline.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace hyperear;

sim::ScenarioConfig scenario(int slides, bool chatting = false) {
  sim::ScenarioConfig c;
  c.phone = sim::galaxy_s4();
  c.environment = chatting ? sim::meeting_room_chatting() : sim::meeting_room_quiet();
  c.speaker_distance = 6.0;
  c.speaker_height = 1.3;
  c.phone_height = 1.3;
  c.slides_per_stature = slides;
  c.calibration_duration = 3.0;
  c.hold_duration = 0.7;
  c.jitter = sim::hand_jitter();
  // A little extra clock offset makes the SFO ablation visible.
  c.speaker_clock_ppm_sigma = 40.0;
  return c;
}

std::vector<double> run(int n_trials, int slides,
                        const std::function<void(core::PipelineConfig&)>& tweak,
                        bool chatting = false) {
  std::vector<double> errors;
  for (int t = 0; t < n_trials; ++t) {
    Rng rng(static_cast<std::uint64_t>(2100 + t * 53));
    const sim::Session s =
        sim::make_localization_session(scenario(slides, chatting), rng);
    core::PipelineConfig opts;
    tweak(opts);
    const auto fix = core::try_localize(s, opts);
    if (!fix.has_value() || !fix->valid) continue;
    errors.push_back(core::localization_error(*fix, s));
  }
  return errors;
}

}  // namespace

int main() {
  const int n_trials = bench::trials(8);
  std::printf("=== Design-choice ablations (S4, hand-held, 6 m, 2D) ===\n");

  bench::print_summary("full pipeline",
                       run(n_trials, 5, [](core::PipelineConfig&) {}));
  bench::print_summary("no SFO correction", run(n_trials, 5, [](core::PipelineConfig& o) {
                         o.asp.sfo_correction = false;
                       }));
  bench::print_summary("no drift correction (Eq. 4)",
                       run(n_trials, 5, [](core::PipelineConfig& o) {
                         o.ttl.displacement.drift_correction = false;
                       }));
  bench::print_summary("no rotation correction",
                       run(n_trials, 5, [](core::PipelineConfig& o) {
                         o.ttl.rotation_correction = false;
                       }));
  // The band-pass earns its keep against out-of-band noise (Section VII-E),
  // so its ablation runs in the chatting room.
  bench::print_summary("full pipeline (chatting room)",
                       run(n_trials, 5, [](core::PipelineConfig&) {}, true));
  bench::print_summary("no band-pass (chatting room)",
                       run(n_trials, 5, [](core::PipelineConfig& o) {
                         o.asp.bandpass = false;
                       }, true));
  bench::print_summary("1-slide session",
                       run(n_trials, 1, [](core::PipelineConfig&) {}));
  bench::print_summary("3-slide session",
                       run(n_trials, 3, [](core::PipelineConfig&) {}));
  bench::print_summary("5-slide session",
                       run(n_trials, 5, [](core::PipelineConfig&) {}));
  return 0;
}
