/// Google-benchmark microbenchmarks of the primitives on HyperEar's hot
/// path: FFT, cross-correlation, matched-filter detection, FIR band-pass,
/// the augmented triangulation solve, and acoustic rendering. These bound
/// the end-to-end processing cost per session (which must run comfortably
/// on a phone-class core: the paper ships HyperEar as an app).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <span>

#include "bench_json.hpp"
#include "common/rng.hpp"
#include "dsp/chirp.hpp"
#include "dsp/correlation.hpp"
#include "dsp/fft.hpp"
#include "dsp/fir.hpp"
#include "dsp/matched_filter.hpp"
#include "dsp/ols.hpp"
#include "geom/triangulation.hpp"
#include "sim/acoustic_renderer.hpp"
#include "sim/scenario.hpp"

HYPEREAR_DEFINE_ALLOC_COUNTER()

namespace {

using namespace hyperear;

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<dsp::Complex> x(n);
  for (auto& v : x) v = dsp::Complex(rng.gaussian(), rng.gaussian());
  for (auto _ : state) {
    auto copy = x;
    dsp::fft_inplace(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 17);

void BM_CorrelateValid(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  std::vector<double> x(n), h(2205);
  for (auto& v : x) v = rng.gaussian();
  for (auto& v : h) v = rng.gaussian();
  for (auto _ : state) {
    auto c = dsp::correlate_valid(x, h);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_CorrelateValid)->Arg(1 << 15)->Arg(1 << 17);

void BM_MatchedFilterDetect(benchmark::State& state) {
  // One second of 44.1 kHz audio with five chirps.
  const dsp::Chirp chirp{dsp::ChirpParams{}};
  Rng rng(3);
  std::vector<double> x(44100);
  for (auto& v : x) v = rng.gaussian(0.0, 0.01);
  for (int k = 0; k < 5; ++k) {
    const double t0 = 0.05 + 0.2 * k;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double t = static_cast<double>(i) / 44100.0 - t0;
      if (t >= 0.0 && t <= 0.05) x[i] += chirp.value(t);
    }
  }
  const dsp::MatchedFilterDetector det(chirp.reference(44100.0), {});
  for (auto _ : state) {
    auto d = det.detect(x);
    benchmark::DoNotOptimize(d.data());
  }
  state.SetItemsProcessed(state.iterations() * 44100);
}
BENCHMARK(BM_MatchedFilterDetect);

void BM_BandpassFilter(benchmark::State& state) {
  Rng rng(4);
  std::vector<double> x(44100);
  for (auto& v : x) v = rng.gaussian();
  const std::vector<double> taps = dsp::design_bandpass(2000.0, 6400.0, 44100.0, 255);
  for (auto _ : state) {
    auto y = dsp::filter_same(x, taps);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 44100);
}
BENCHMARK(BM_BandpassFilter);

void BM_SolveAugmented(benchmark::State& state) {
  geom::AugmentedTdoa in;
  in.slide_distance = 0.55;
  in.mic_separation = 0.1366;
  in.range_diff_mic1 = -0.004;
  in.range_diff_mic2 = -0.014;
  for (auto _ : state) {
    auto r = geom::solve_augmented(in);
    benchmark::DoNotOptimize(&r);
  }
}
BENCHMARK(BM_SolveAugmented);

void BM_RenderSecond(benchmark::State& state) {
  // Acoustic rendering cost per second of stereo audio (meeting room).
  sim::ScenarioConfig c;
  c.jitter = sim::ruler_jitter();
  Rng rng(5);
  const sim::PhoneSpec phone = sim::galaxy_s4();
  const sim::Speaker speaker(sim::SpeakerSpec{}, {8.0, 6.5, 1.3});
  sim::TrajectoryBuilder b({5.0, 6.5, 1.3}, 0.0);
  b.hold(1.0);
  const sim::Trajectory traj = b.build(sim::ruler_jitter(), rng);
  const sim::Environment env = sim::meeting_room_quiet();
  for (auto _ : state) {
    Rng r2(6);
    auto rec = sim::render_audio(speaker, phone, env, traj, 1.0, r2);
    benchmark::DoNotOptimize(rec.mic1.data());
  }
  state.SetItemsProcessed(state.iterations() * 44100);
}
BENCHMARK(BM_RenderSecond);

// ---------------------------------------------------------------------------
// BENCH_dsp.json: before/after rows for the two pipeline hot primitives.
//
// "monolithic-fft" reproduces the pre-overlap-save implementation (one FFT
// at the next power of two covering the WHOLE signal, via the reference
// fft_convolve path); "ols" is the shipping implementation (block
// overlap-save through a cached kernel spectrum + reusable workspace). Both
// compute the same function; the rows record the speedup and the per-op
// allocator traffic.

double time_ns_per_op(int reps, const std::function<void()>& op) {
  using BenchClock = std::chrono::steady_clock;
  op();  // warm-up: page in buffers, build lazy state
  const BenchClock::time_point t0 = BenchClock::now();
  for (int r = 0; r < reps; ++r) op();
  const double ns =
      std::chrono::duration<double, std::nano>(BenchClock::now() - t0).count();
  return ns / reps;
}

bench::BenchRow measure(const std::string& op, const std::string& variant,
                        std::size_t n, int reps, const std::function<void()>& fn) {
  bench::BenchRow row;
  row.op = op;
  row.variant = variant;
  row.n = n;
  const std::size_t bytes0 = bench::allocated_bytes();
  const int counted = reps + 1;  // the warm-up rep allocates like any other
  row.ns_per_op = time_ns_per_op(reps, fn);
  row.bytes_allocated = (bench::allocated_bytes() - bytes0) / static_cast<std::size_t>(counted);
  std::printf("%-22s %-16s n=%-8zu %12.0f ns/op %12zu bytes/op\n", op.c_str(),
              variant.c_str(), n, row.ns_per_op, row.bytes_allocated);
  return row;
}

/// Pre-PR filter_same: monolithic full convolution, then trim to "same".
std::vector<double> monolithic_filter_same(std::span<const double> x,
                                           std::span<const double> taps) {
  const std::vector<double> full = dsp::fft_convolve(x, taps);
  const std::size_t half = taps.size() / 2;
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = full[i + half];
  return out;
}

/// Pre-PR correlate_normalized: monolithic FFT correlation + normalization.
std::vector<double> monolithic_correlate_normalized(std::span<const double> x,
                                                    std::span<const double> h,
                                                    double h_norm) {
  const std::vector<double> hr(h.rbegin(), h.rend());
  const std::vector<double> full = dsp::fft_convolve(x, hr);
  std::vector<double> corr(x.size() - h.size() + 1);
  for (std::size_t k = 0; k < corr.size(); ++k) corr[k] = full[k + h.size() - 1];
  return dsp::normalize_correlation(corr, x, h.size(), h_norm);
}

void write_dsp_json() {
  const bool smoke = bench::smoke_mode();
  const std::vector<double> taps = dsp::design_bandpass(2000.0, 6400.0, 44100.0, 255);
  double taps_energy = 0.0;
  for (double v : taps) taps_energy += v * v;
  const double taps_norm = std::sqrt(taps_energy);

  const dsp::OlsConvolver filter_conv(taps);
  const dsp::OlsConvolver reversed_conv(std::vector<double>(taps.rbegin(), taps.rend()));

  std::vector<bench::BenchRow> rows;
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{1u << 12, 1u << 13}
            : std::vector<std::size_t>{1u << 16, 1u << 20};
  std::printf("\n=== BENCH_dsp.json rows (255-tap kernel) ===\n");
  for (const std::size_t n : sizes) {
    const int reps = smoke ? 1 : (n >= (1u << 20) ? 4 : 24);
    Rng rng(99);
    const std::vector<double> x = rng.gaussian_vector(n);
    dsp::Workspace ws;

    rows.push_back(measure("filter_same", "monolithic-fft", n, reps, [&] {
      auto y = monolithic_filter_same(x, taps);
      benchmark::DoNotOptimize(y.data());
    }));
    rows.push_back(measure("filter_same", "ols", n, reps, [&] {
      auto y = dsp::filter_same(x, filter_conv, &ws);
      benchmark::DoNotOptimize(y.data());
    }));
    rows.push_back(measure("correlate_normalized", "monolithic-fft", n, reps, [&] {
      auto y = monolithic_correlate_normalized(x, taps, taps_norm);
      benchmark::DoNotOptimize(y.data());
    }));
    std::vector<double> prefix_scratch;
    std::vector<double> norm_out;
    rows.push_back(measure("correlate_normalized", "ols", n, reps, [&] {
      auto corr = dsp::correlate_valid(x, reversed_conv, &ws);
      dsp::normalize_correlation_into(corr, x, taps.size(), taps_norm,
                                      prefix_scratch, norm_out);
      benchmark::DoNotOptimize(norm_out.data());
    }));
  }
  bench::write_bench_json("BENCH_dsp.json", rows);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_dsp_json();
  return 0;
}
