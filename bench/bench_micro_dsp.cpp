/// Google-benchmark microbenchmarks of the primitives on HyperEar's hot
/// path: FFT, cross-correlation, matched-filter detection, FIR band-pass,
/// the augmented triangulation solve, and acoustic rendering. These bound
/// the end-to-end processing cost per session (which must run comfortably
/// on a phone-class core: the paper ships HyperEar as an app).

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "dsp/chirp.hpp"
#include "dsp/correlation.hpp"
#include "dsp/fft.hpp"
#include "dsp/fir.hpp"
#include "dsp/matched_filter.hpp"
#include "geom/triangulation.hpp"
#include "sim/acoustic_renderer.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace hyperear;

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<dsp::Complex> x(n);
  for (auto& v : x) v = dsp::Complex(rng.gaussian(), rng.gaussian());
  for (auto _ : state) {
    auto copy = x;
    dsp::fft_inplace(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 17);

void BM_CorrelateValid(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  std::vector<double> x(n), h(2205);
  for (auto& v : x) v = rng.gaussian();
  for (auto& v : h) v = rng.gaussian();
  for (auto _ : state) {
    auto c = dsp::correlate_valid(x, h);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_CorrelateValid)->Arg(1 << 15)->Arg(1 << 17);

void BM_MatchedFilterDetect(benchmark::State& state) {
  // One second of 44.1 kHz audio with five chirps.
  const dsp::Chirp chirp{dsp::ChirpParams{}};
  Rng rng(3);
  std::vector<double> x(44100);
  for (auto& v : x) v = rng.gaussian(0.0, 0.01);
  for (int k = 0; k < 5; ++k) {
    const double t0 = 0.05 + 0.2 * k;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double t = i / 44100.0 - t0;
      if (t >= 0.0 && t <= 0.05) x[i] += chirp.value(t);
    }
  }
  const dsp::MatchedFilterDetector det(chirp.reference(44100.0), {});
  for (auto _ : state) {
    auto d = det.detect(x);
    benchmark::DoNotOptimize(d.data());
  }
  state.SetItemsProcessed(state.iterations() * 44100);
}
BENCHMARK(BM_MatchedFilterDetect);

void BM_BandpassFilter(benchmark::State& state) {
  Rng rng(4);
  std::vector<double> x(44100);
  for (auto& v : x) v = rng.gaussian();
  const std::vector<double> taps = dsp::design_bandpass(2000.0, 6400.0, 44100.0, 255);
  for (auto _ : state) {
    auto y = dsp::filter_same(x, taps);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 44100);
}
BENCHMARK(BM_BandpassFilter);

void BM_SolveAugmented(benchmark::State& state) {
  geom::AugmentedTdoa in;
  in.slide_distance = 0.55;
  in.mic_separation = 0.1366;
  in.range_diff_mic1 = -0.004;
  in.range_diff_mic2 = -0.014;
  for (auto _ : state) {
    auto r = geom::solve_augmented(in);
    benchmark::DoNotOptimize(&r);
  }
}
BENCHMARK(BM_SolveAugmented);

void BM_RenderSecond(benchmark::State& state) {
  // Acoustic rendering cost per second of stereo audio (meeting room).
  sim::ScenarioConfig c;
  c.jitter = sim::ruler_jitter();
  Rng rng(5);
  const sim::PhoneSpec phone = sim::galaxy_s4();
  const sim::Speaker speaker(sim::SpeakerSpec{}, {8.0, 6.5, 1.3});
  sim::TrajectoryBuilder b({5.0, 6.5, 1.3}, 0.0);
  b.hold(1.0);
  const sim::Trajectory traj = b.build(sim::ruler_jitter(), rng);
  const sim::Environment env = sim::meeting_room_quiet();
  for (auto _ : state) {
    Rng r2(6);
    auto rec = sim::render_audio(speaker, phone, env, traj, 1.0, r2);
    benchmark::DoNotOptimize(rec.mic1.data());
  }
  state.SetItemsProcessed(state.iterations() * 44100);
}
BENCHMARK(BM_RenderSecond);

}  // namespace

BENCHMARK_MAIN();
