/// Reproduces the paper's Fig. 8: the y-axis acceleration of back-and-forth
/// slides and the Eq. 3 power level used for movement segmentation, printed
/// as a time series, plus the detected slide boundaries against ground
/// truth.

#include <cstdio>

#include "imu/preprocess.hpp"
#include "imu/segmentation.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace hyperear;

  sim::ScenarioConfig config;
  config.phone = sim::galaxy_s4();
  config.environment = sim::meeting_room_quiet();
  config.speaker_distance = 4.0;
  config.slides_per_stature = 3;
  config.calibration_duration = 2.0;
  config.jitter = sim::hand_jitter();  // Fig. 8 is a hand-held record
  Rng rng(8008);
  const sim::Session s = sim::make_localization_session(config, rng);
  const imu::MotionSignals motion = imu::preprocess(s.imu);
  const std::vector<double> power =
      imu::power_level(motion.lin_accel_y, imu::SegmentationOptions{}.window);

  std::printf("=== Fig. 8: y-axis acceleration and Eq. 3 power (100 Hz) ===\n");
  std::printf("%8s %14s %12s\n", "t (s)", "accel (m/s^2)", "power");
  for (std::size_t i = 0; i < motion.size(); i += 5) {
    const double t = static_cast<double>(i) / motion.sample_rate;
    if (t < 1.5 || t > 8.0) continue;  // the window the figure shows
    std::printf("%8.2f %14.3f %12.3f\n", t, motion.lin_accel_y[i], power[i]);
  }

  std::printf("\n=== Detected slides (threshold %.1f, W=%zu, m=%zu) ===\n",
              imu::SegmentationOptions{}.threshold, imu::SegmentationOptions{}.window,
              imu::SegmentationOptions{}.quiet_run);
  const std::vector<imu::Segment> segs = imu::segment_movements(motion.lin_accel_y);
  std::printf("%8s %10s %10s\n", "slide", "start (s)", "end (s)");
  for (std::size_t k = 0; k < segs.size(); ++k) {
    std::printf("%8zu %10.2f %10.2f\n", k,
                static_cast<double>(segs[k].start) / motion.sample_rate,
                static_cast<double>(segs[k].end) / motion.sample_rate);
  }
  std::printf("\nground truth slides:\n");
  for (std::size_t k = 0; k < s.truth.slides.size(); ++k) {
    std::printf("%8zu %10.2f %10.2f\n", k, s.truth.slides[k].t0, s.truth.slides[k].t1);
  }
  return 0;
}
