/// Reproduces the paper's Fig. 4: (a) the TDoA quantization regions are
/// densest broadside of the microphone pair and sparse toward the endfire
/// directions; (b) widening the separation makes the regions denser
/// everywhere. Prints region width (m) over bearing and over separation.

#include <cmath>
#include <cstdio>

#include "common/units.hpp"
#include "geom/hyperbola.hpp"

int main() {
  using namespace hyperear;
  using geom::Vec2;

  const double fs = kAudioSampleRate;
  const double s = kSpeedOfSound;

  std::printf("=== Fig. 4(a): region width vs bearing (S4, r = 3 m) ===\n");
  std::printf("bearing 90 deg = broadside (the 'dense' central area)\n");
  const double d = kGalaxyS4MicSeparation;
  const Vec2 f1{d / 2.0, 0.0}, f2{-d / 2.0, 0.0};
  std::printf("%10s %16s\n", "bearing", "region width");
  for (double bearing_deg = 90.0; bearing_deg >= 10.0; bearing_deg -= 10.0) {
    const double b = deg2rad(bearing_deg);
    const Vec2 p{3.0 * std::cos(b), 3.0 * std::sin(b)};
    std::printf("%8.0f deg %12.3f m\n", bearing_deg,
                geom::tdoa_region_width(f1, f2, p, fs, s));
  }

  std::printf("\n=== Fig. 4(b): region width broadside vs separation (r = 5 m) ===\n");
  std::printf("%12s %10s %16s\n", "separation", "N (Eq.2)", "width @5m");
  for (double sep : {0.1366, 0.2, 0.3, 0.4, 0.55, 0.8}) {
    const Vec2 a{sep / 2.0, 0.0}, b{-sep / 2.0, 0.0};
    const Vec2 p{0.3, 5.0};
    std::printf("%10.2f cm %10d %12.3f m\n", 100.0 * sep,
                geom::distinguishable_hyperbola_count(sep, fs, s),
                geom::tdoa_region_width(a, b, p, fs, s));
  }

  std::printf("\n=== Fig. 3 trend: broadside region width vs range (S4) ===\n");
  for (double r : {1.0, 2.0, 3.0, 5.0, 7.0, 10.0}) {
    const Vec2 p{0.3, r};
    std::printf("range %4.0f m: width %8.3f m\n", r,
                geom::tdoa_region_width(f1, f2, p, fs, s));
  }
  return 0;
}
