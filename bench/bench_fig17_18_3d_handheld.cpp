/// Reproduces the paper's Figs. 17-18: CDFs of 3D (projected) localization
/// error with 5-slide aggregation per stature, hand-held phones, speaker at
/// 0.5 m stature, ranges 1-7 m, for the Galaxy S4 (Fig. 17) and the Galaxy
/// Note3 (Fig. 18). Paper reference at 7 m: S4 mean/90% = 15.8/25.2 cm,
/// Note3 = 19.4/37.5 cm.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/pipeline.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace hyperear;
  const int n_trials = bench::trials(6);
  const double ranges[] = {1.0, 2.0, 3.0, 5.0, 7.0};

  int fig = 17;
  for (const sim::PhoneSpec& phone : {sim::galaxy_s4(), sim::galaxy_note3()}) {
    std::printf("=== Fig. %d: 3D error CDF vs range (%s, hand-held, two statures) ===\n",
                fig++, phone.name.c_str());
    for (double range : ranges) {
      std::vector<double> errors;
      for (int t = 0; t < n_trials; ++t) {
        sim::ScenarioConfig c;
        c.phone = phone;
        c.environment = sim::meeting_room_quiet();
        c.speaker_distance = range;
        c.speaker_height = 0.5;  // Section VII-D
        c.phone_height = 1.3;
        c.two_statures = true;
        c.stature_change = 0.45;
        c.slides_per_stature = 5;
        c.calibration_duration = 3.0;
        c.hold_duration = 0.7;
        c.jitter = sim::hand_jitter();
        Rng rng(static_cast<std::uint64_t>(1700 + t * 41) + static_cast<std::uint64_t>(range * 103) +
                (phone.name == "Galaxy S4" ? 0 : 7000));
        c.slide_distance = rng.uniform(0.50, 0.60);
        const sim::Session s = sim::make_localization_session(c, rng);
        core::PipelineConfig opts;
        // The paper's acceptance rule for hand operation.
        opts.ttl.min_slide_distance = 0.45;
        opts.ttl.max_z_rotation_deg = 20.0;
        const auto fix = core::try_localize(s, opts);
        if (!fix.has_value() || !fix->valid) continue;
        errors.push_back(core::localization_error(*fix, s));
      }
      bench::print_cdf(phone.name + std::string(" 3D @") + std::to_string(int(range)) + "m",
                       errors, 0.6);
    }
  }
  std::printf(
      "\npaper reference at 7 m: S4 15.8/25.2 cm, Note3 19.4/37.5 cm (mean/p90)\n");
  return 0;
}
