#pragma once

#include <atomic>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

/// @file bench_json.hpp
/// Machine-readable benchmark output. The perf benches emit one JSON file
/// each (BENCH_dsp.json, BENCH_engine.json) with flat rows —
/// {op, variant, n, ns_per_op, bytes_allocated} — so before/after
/// comparisons of the DSP hot path are a `jq` one-liner instead of a
/// log-scraping exercise (README "Performance" quotes these files).
///
/// Allocation accounting: a bench binary that invokes
/// HYPEREAR_DEFINE_ALLOC_COUNTER() at namespace scope (exactly once)
/// replaces global operator new/delete with counting versions; the timing
/// loop samples `allocated_bytes()` around the reps. Deallocations are not
/// subtracted — the counter measures allocator traffic (how often the hot
/// path hits the heap), not peak footprint.

namespace hyperear::bench {

/// Running total of bytes requested from global operator new. Defined by
/// HYPEREAR_DEFINE_ALLOC_COUNTER(); zero forever if the binary opted out.
extern std::atomic<std::size_t> g_allocated_bytes;

inline std::size_t allocated_bytes() {
  return g_allocated_bytes.load(std::memory_order_relaxed);
}

/// True when the binary runs as a ctest smoke check (label "bench-smoke"):
/// shrink inputs and rep counts so the run finishes in well under a second
/// while still exercising every code path the real run times.
inline bool smoke_mode() {
  const char* env = std::getenv("HYPEREAR_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// One measurement row.
struct BenchRow {
  std::string op;       ///< primitive measured, e.g. "filter_same"
  std::string variant;  ///< implementation, e.g. "monolithic-fft" vs "ols"
  std::size_t n = 0;    ///< problem size (samples)
  double ns_per_op = 0.0;
  std::size_t bytes_allocated = 0;  ///< heap bytes requested per op
};

/// Schema check: every row must carry a non-empty op and variant, a
/// positive problem size, and a finite positive timing; an empty row list
/// means the bench silently stopped measuring. Violations return false so
/// write_bench_json can abort the process — the bench-smoke ctest run then
/// fails the moment a bench stops emitting valid rows, instead of the
/// regression surfacing when someone next diffs the JSON.
inline bool validate_bench_rows(const std::vector<BenchRow>& rows,
                                std::string* why = nullptr) {
  const auto fail = [why](const std::string& message) {
    if (why != nullptr) *why = message;
    return false;
  };
  if (rows.empty()) return fail("no rows emitted");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    const std::string at = "row " + std::to_string(i) + ": ";
    if (r.op.empty()) return fail(at + "empty op");
    if (r.variant.empty()) return fail(at + "empty variant");
    if (r.n == 0) return fail(at + "n == 0");
    if (!(r.ns_per_op > 0.0) || r.ns_per_op != r.ns_per_op ||
        r.ns_per_op > 1e18) {
      return fail(at + "ns_per_op not a finite positive number");
    }
  }
  // Scaling contract of the engine bench: the thread-scaling ladder is the
  // row set before/after comparisons key on, so an engine bench that stops
  // emitting any rung (say, after an edit to its thread-count set) must
  // fail loudly here rather than producing a JSON that silently lost its
  // scaling story.
  bool any_engine = false;
  for (const BenchRow& r : rows) any_engine = any_engine || r.op == "engine_localize_all";
  if (any_engine) {
    for (const char* rung :
         {"engine-threads-1", "engine-threads-2", "engine-threads-4",
          "engine-threads-8"}) {
      bool found = false;
      for (const BenchRow& r : rows) {
        found = found || (r.op == "engine_localize_all" && r.variant == rung);
      }
      if (!found) {
        return fail(std::string("engine_localize_all rows missing scaling variant ") +
                    rung);
      }
    }
  }
  // Contract of the streaming bench (BENCH_streaming.json): the cadence
  // ladder must stay complete, and every peak-retention row must report a
  // window that is (a) actually measured and (b) smaller than one
  // channel's full retention — the bounded-memory claim the streaming
  // subsystem makes, enforced at the schema layer so a regression fails
  // the bench-smoke run rather than surviving into a committed JSON.
  bool any_streaming = false;
  for (const BenchRow& r : rows) any_streaming = any_streaming || r.op == "streaming_ingest";
  if (any_streaming) {
    for (const char* rung :
         {"chunk-441", "chunk-4410", "chunk-44100", "chunk-whole"}) {
      bool found = false;
      for (const BenchRow& r : rows) {
        found = found || (r.op == "streaming_ingest" && r.variant == rung);
      }
      if (!found) {
        return fail(std::string("streaming_ingest rows missing cadence variant ") +
                    rung);
      }
    }
    bool any_peak = false;
    for (const BenchRow& r : rows) {
      if (r.op != "streaming_peak_retained") continue;
      any_peak = true;
      if (r.bytes_allocated == 0) {
        return fail("streaming_peak_retained row reports an empty window");
      }
      if (r.bytes_allocated >= r.n * sizeof(double)) {
        return fail("streaming_peak_retained window not bounded below full "
                    "retention (variant " + r.variant + ")");
      }
    }
    if (!any_peak) {
      return fail("streaming rows present but no streaming_peak_retained row");
    }
  }
  // Contract of the serving-layer load bench (BENCH_load.json): the
  // offered-rate ladder needs at least four rungs per row family, observed
  // queue peaks must stay within the configured bound (on server_load_queue
  // rows n is the configured max_queued and bytes_allocated the observed
  // peak), and at least one rung must actually shed (bytes_allocated on
  // server_load_throughput rows counts unserved requests) — the
  // past-saturation story. Enforced at the schema layer so a bench edit
  // that loses the saturation point fails bench-smoke instead of silently
  // committing a hollow JSON.
  bool any_load = false;
  for (const BenchRow& r : rows) {
    any_load = any_load || r.op.rfind("server_load", 0) == 0;
  }
  if (any_load) {
    for (const char* family : {"server_load_p50", "server_load_p99",
                               "server_load_throughput", "server_load_queue"}) {
      std::size_t rungs = 0;
      for (const BenchRow& r : rows) {
        if (r.op == family) ++rungs;
      }
      if (rungs < 4) {
        return fail(std::string(family) +
                    " has fewer than 4 offered-rate rows");
      }
    }
    for (const BenchRow& r : rows) {
      if (r.op == "server_load_queue" && r.bytes_allocated > r.n) {
        return fail("server_load_queue peak depth exceeds the configured "
                    "bound (variant " + r.variant + ")");
      }
    }
    bool any_shed = false;
    for (const BenchRow& r : rows) {
      any_shed = any_shed ||
                 (r.op == "server_load_throughput" && r.bytes_allocated > 0);
    }
    if (!any_shed) {
      return fail("no server_load_throughput row sheds: the offered-rate "
                  "ladder never passed saturation");
    }
  }
  return true;
}

/// Write rows as a JSON array of flat objects. Overwrites `path`.
/// Terminates the process (exit 1) when the rows fail the schema check, so
/// ctest's bench-smoke label catches a bench that bit-rotted its output.
inline void write_bench_json(const std::string& path,
                             const std::vector<BenchRow>& rows) {
  std::string why;
  if (!validate_bench_rows(rows, &why)) {
    std::fprintf(stderr, "bench_json: %s: invalid rows (%s)\n", path.c_str(),
                 why.c_str());
    std::exit(1);
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_json: cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    std::fprintf(f,
                 "  {\"op\": \"%s\", \"variant\": \"%s\", \"n\": %zu, "
                 "\"ns_per_op\": %.1f, \"bytes_allocated\": %zu}%s\n",
                 r.op.c_str(), r.variant.c_str(), r.n, r.ns_per_op,
                 r.bytes_allocated, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", path.c_str(), rows.size());
}

}  // namespace hyperear::bench

/// Define the counting global operator new/delete for this binary. Must
/// appear exactly once per executable, at namespace scope.
///
/// The replacement operators intentionally pair malloc with free — the
/// sanctioned way to interpose the global allocator — but GCC's
/// -Wmismatched-new-delete only sees "free() on a pointer from operator
/// new" inside this TU and flags it, so the pragma scopes that one false
/// positive to the macro expansion.
#define HYPEREAR_DEFINE_ALLOC_COUNTER()                                     \
  _Pragma("GCC diagnostic push")                                            \
  _Pragma("GCC diagnostic ignored \"-Wmismatched-new-delete\"")             \
  namespace hyperear::bench {                                               \
  std::atomic<std::size_t> g_allocated_bytes{0};                            \
  }                                                                         \
  void* operator new(std::size_t size) {                                    \
    ::hyperear::bench::g_allocated_bytes.fetch_add(                         \
        size, std::memory_order_relaxed);                                   \
    if (void* p = std::malloc(size == 0 ? 1 : size)) return p;              \
    throw std::bad_alloc{};                                                 \
  }                                                                         \
  void* operator new[](std::size_t size) { return ::operator new(size); }   \
  void operator delete(void* p) noexcept { std::free(p); }                  \
  void operator delete[](void* p) noexcept { std::free(p); }                \
  void operator delete(void* p, std::size_t) noexcept { std::free(p); }     \
  void operator delete[](void* p, std::size_t) noexcept { std::free(p); }   \
  _Pragma("GCC diagnostic pop")
