/// Reproduces the paper's Fig. 14: CDFs of 2D localization error for
/// different sliding distances (10-20, 30-40, 40-50, 50-60 cm bins), Note3
/// mounted on the level slide ruler, speaker 5 m away. Paper reference:
/// mean 142 cm for 10-20 cm slides vs 18 cm for 50-60 cm slides.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/pipeline.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace hyperear;
  const int n_trials = bench::trials(8);

  struct Bin {
    const char* label;
    double lo;
    double hi;
  };
  const Bin bins[] = {{"slide 10-20cm", 0.10, 0.20},
                      {"slide 30-40cm", 0.30, 0.40},
                      {"slide 40-50cm", 0.40, 0.50},
                      {"slide 50-60cm", 0.50, 0.60}};

  std::printf("=== Fig. 14: 2D error CDF vs sliding distance (Note3, ruler, 5 m) ===\n");
  for (const Bin& bin : bins) {
    std::vector<double> errors;
    for (int t = 0; t < n_trials; ++t) {
      sim::ScenarioConfig c;
      c.phone = sim::galaxy_note3();
      c.environment = sim::meeting_room_quiet();
      c.speaker_distance = 5.0;
      c.speaker_height = 1.3;
      c.phone_height = 1.3;
      c.slides_per_stature = 5;
      c.calibration_duration = 3.0;
      c.hold_duration = 0.7;
      c.jitter = sim::ruler_jitter();
      Rng rng(static_cast<std::uint64_t>(1400 + t * 31) + static_cast<std::uint64_t>(1000 * bin.lo));
      c.slide_distance = rng.uniform(bin.lo, bin.hi);
      // Short slides need a gentler stroke so the endpoints stay clean.
      c.slide_duration = 0.9;
      const sim::Session s = sim::make_localization_session(c, rng);
      core::PipelineConfig opts;  // no min-distance gate: it IS the sweep
      const auto fix = core::try_localize(s, opts);
      if (!fix.has_value() || !fix->valid) continue;
      errors.push_back(core::localization_error(*fix, s));
    }
    bench::print_cdf(bin.label, errors, 2.0);
  }
  std::printf("\npaper reference: mean 142cm (10-20cm) -> 18cm (50-60cm)\n");
  return 0;
}
