/// Reproduces the paper's Fig. 19: CDFs of 3D localization error at 7 m in
/// the four noise conditions — meeting room quiet (SNR > 15 dB), meeting
/// room chatting (9 dB), mall off-peak (6 dB) and mall busy hour (3 dB).
/// Paper reference: the room conditions are nearly indistinguishable
/// (voice is filtered out of the chirp band); mall busy is the worst with
/// mean 37.2 cm.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/pipeline.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace hyperear;
  const int n_trials = bench::trials(6);

  const sim::Environment environments[] = {
      sim::meeting_room_quiet(),
      sim::meeting_room_chatting(),
      sim::mall_off_peak(),
      sim::mall_busy_hour(),
  };

  std::printf("=== Fig. 19: 3D error CDFs across environments (S4, 7 m) ===\n");
  std::uint64_t salt = 0;
  for (const sim::Environment& env : environments) {
    std::vector<double> errors;
    for (int t = 0; t < n_trials; ++t) {
      sim::ScenarioConfig c;
      c.phone = sim::galaxy_s4();
      c.environment = env;
      c.speaker_distance = 7.0;
      c.speaker_height = 0.5;
      c.phone_height = 1.3;
      c.two_statures = true;
      c.slides_per_stature = 5;
      c.calibration_duration = 3.0;
      c.hold_duration = 0.7;
      c.jitter = sim::hand_jitter();
      Rng rng(static_cast<std::uint64_t>(1900 + t * 43) + salt * 1009);
      c.slide_distance = rng.uniform(0.50, 0.60);
      const sim::Session s = sim::make_localization_session(c, rng);
      core::PipelineConfig opts;
      opts.ttl.min_slide_distance = 0.45;
      const auto fix = core::try_localize(s, opts);
      if (!fix.has_value() || !fix->valid) continue;
      errors.push_back(core::localization_error(*fix, s));
    }
    bench::print_cdf(env.name, errors, 1.5);
    ++salt;
  }
  std::printf("\npaper reference: room quiet ~ room chatting; worst case mall busy\n");
  std::printf("mean 37.2 cm at 7 m (SNR 3 dB)\n");
  return 0;
}
