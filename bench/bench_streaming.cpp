/// Streaming-ingest benchmark: the StreamingSession fed one rendered
/// protocol run at several push cadences (10 ms, 100 ms, 1 s, whole
/// recording), timing end-to-end ingest+finalize per sample and recording
/// the peak retained-sample window — the memory the streaming refactor
/// exists to bound. Every cadence's fix is checked bit-for-bit against the
/// batch `try_localize` on the concatenated audio (the correctness anchor;
/// a mismatch fails the binary, so the bench-smoke ctest run catches a
/// divergence the moment it appears). A final row multiplexes four
/// sessions through the StreamingEngine to time the service-shaped path.
///
/// Output: BENCH_streaming.json —
///   streaming_ingest / chunk-*        ns per ingested sample per cadence
///   streaming_peak_retained / chunk-* bytes_allocated = peak retained
///                                     window in bytes (both channels);
///                                     the schema check enforces it stays
///                                     below one channel's full retention
///   streaming_engine / sessions-4     ns per sample, 4 sessions x 4 workers

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.hpp"
#include "bench_util.hpp"
#include "core/pipeline.hpp"
#include "core/streaming_session.hpp"
#include "runtime/streaming_engine.hpp"
#include "sim/scenario.hpp"

HYPEREAR_DEFINE_ALLOC_COUNTER()

namespace {

using namespace hyperear;
using Clock = std::chrono::steady_clock;

bool identical(const core::LocalizationResult& a, const core::LocalizationResult& b) {
  return a.valid == b.valid && a.slides_used == b.slides_used &&
         a.estimated_position.x == b.estimated_position.x &&
         a.estimated_position.y == b.estimated_position.y && a.range == b.range &&
         a.estimated_period == b.estimated_period && a.sfo_ppm == b.sfo_ppm;
}

}  // namespace

int main() {
  sim::ScenarioConfig c;
  c.speaker_distance = 4.0;
  c.calibration_duration = 3.0;
  // The smoke run keeps the protocol short; the real run uses the paper's
  // five slides per stature so the recording dwarfs the retention window.
  c.slides_per_stature = bench::smoke_mode() ? 3 : 5;
  c.jitter = sim::hand_jitter();
  Rng rng(7100);
  sim::Session batch = sim::make_localization_session(c, rng);
  const auto expect = core::try_localize(batch, {});
  if (!expect.has_value() || !expect->valid) {
    std::fprintf(stderr, "bench_streaming: batch reference did not localize\n");
    return 1;
  }

  // Streaming form: audio leaves the meta and arrives via push().
  const std::vector<double> mic1 = std::move(batch.audio.mic1);
  const std::vector<double> mic2 = std::move(batch.audio.mic2);
  batch.audio.mic1.clear();
  batch.audio.mic2.clear();
  const std::size_t n = mic1.size();
  const double fs = batch.audio.sample_rate;
  std::printf("=== Streaming ingest (%zu samples, %.1f s of audio) ===\n", n,
              static_cast<double>(n) / fs);
  std::printf("%12s %10s %12s %14s %10s\n", "cadence", "wall s", "ns/sample",
              "peak window", "identical");

  std::vector<bench::BenchRow> rows;
  bool all_identical = true;
  const std::vector<std::pair<std::string, std::size_t>> cadences = {
      {"chunk-441", 441},        // 10 ms at 44.1 kHz
      {"chunk-4410", 4410},      // 100 ms
      {"chunk-44100", 44100},    // 1 s
      {"chunk-whole", n},
  };
  for (const auto& [variant, slice] : cadences) {
    core::StreamingSession session(batch);
    const Clock::time_point t0 = Clock::now();
    for (std::size_t pos = 0; pos < n;) {
      const std::size_t len = std::min(slice, n - pos);
      session.push(std::span<const double>(mic1).subspan(pos, len),
                   std::span<const double>(mic2).subspan(pos, len));
      pos += len;
    }
    const auto got = session.finalize();
    const double seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    const bool same = got.has_value() && identical(*got, *expect);
    all_identical = all_identical && same;
    const std::size_t peak_bytes =
        session.peak_retained_samples() * sizeof(double);
    std::printf("%12s %10.3f %12.2f %11.1f KiB %10s\n", variant.c_str(), seconds,
                seconds * 1e9 / static_cast<double>(n),
                static_cast<double>(peak_bytes) / 1024.0,
                same ? "yes" : "MISMATCH");

    bench::BenchRow ingest;
    ingest.op = "streaming_ingest";
    ingest.variant = variant;
    ingest.n = n;
    ingest.ns_per_op = seconds * 1e9 / static_cast<double>(n);
    rows.push_back(ingest);
    bench::BenchRow peak = ingest;
    peak.op = "streaming_peak_retained";
    peak.bytes_allocated = peak_bytes;
    rows.push_back(peak);
  }

  {
    // The service-shaped path: four sessions of the same recording
    // interleaved 100 ms at a time through the StreamingEngine's pool.
    constexpr std::size_t kSessions = 4;
    runtime::StreamingEngineOptions opt;
    opt.threads = 4;
    runtime::StreamingEngine engine({}, opt);
    const Clock::time_point t0 = Clock::now();
    std::vector<std::uint64_t> ids;
    for (std::size_t i = 0; i < kSessions; ++i) ids.push_back(engine.open(batch));
    const std::size_t slice = 4410;
    for (std::size_t pos = 0; pos < n; pos += slice) {
      const std::size_t len = std::min(slice, n - pos);
      for (const std::uint64_t id : ids) {
        runtime::PushStatus status;
        do {
          status = engine.push(id, std::span<const double>(mic1).subspan(pos, len),
                               std::span<const double>(mic2).subspan(pos, len));
        } while (status == runtime::PushStatus::overflow);  // backpressure
        if (status != runtime::PushStatus::accepted) {
          std::fprintf(stderr, "bench_streaming: push rejected (%s)\n",
                       runtime::to_string(status));
          return 1;
        }
      }
    }
    std::vector<std::future<runtime::SessionReport>> futures;
    for (const std::uint64_t id : ids) futures.push_back(engine.finalize(id));
    bool same = true;
    for (std::future<runtime::SessionReport>& f : futures) {
      const runtime::SessionReport r = f.get();
      same = same && r.status == runtime::SessionStatus::ok &&
             identical(r.result, *expect);
    }
    const double seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    all_identical = all_identical && same;
    std::printf("%12s %10.3f %12.2f %14s %10s\n", "engine-4x4", seconds,
                seconds * 1e9 / static_cast<double>(n * kSessions), "-",
                same ? "yes" : "MISMATCH");

    bench::BenchRow row;
    row.op = "streaming_engine";
    row.variant = "sessions-4-threads-4";
    row.n = n * kSessions;
    row.ns_per_op = seconds * 1e9 / static_cast<double>(n * kSessions);
    rows.push_back(row);
  }

  bench::write_bench_json("BENCH_streaming.json", rows);
  std::printf("\nstreaming fixes bit-identical to batch at every cadence: %s\n",
              all_identical ? "yes" : "NO — chunking-invariance bug");
  return all_identical ? 0 : 1;
}
