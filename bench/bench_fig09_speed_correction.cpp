/// Reproduces the paper's Fig. 9: (a) the acceleration of a typical slide
/// and (b) the integral velocity drifting away from zero at the slide's end
/// versus the Eq. 4 linear-error-corrected velocity. Uses a simulated
/// biased accelerometer on one hand-held slide.

#include <cstdio>

#include "common/math_util.hpp"
#include "imu/displacement.hpp"
#include "imu/preprocess.hpp"
#include "imu/segmentation.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace hyperear;

  sim::ScenarioConfig config;
  config.phone = sim::galaxy_s4();
  // A clearly biased accelerometer makes the drift visible, as in Fig. 9.
  config.phone.imu.accel_bias_sigma = 0.12;
  config.environment = sim::meeting_room_quiet();
  config.speaker_distance = 4.0;
  config.slides_per_stature = 1;
  config.calibration_duration = 2.0;
  config.jitter = sim::hand_jitter();
  Rng rng(9009);
  const sim::Session s = sim::make_localization_session(config, rng);
  const imu::MotionSignals motion = imu::preprocess(s.imu);
  const std::vector<imu::Segment> segs = imu::segment_movements(motion.lin_accel_y);
  if (segs.empty()) {
    std::printf("no slide found\n");
    return 1;
  }
  const imu::Segment seg = segs.front();
  const std::size_t pad = 6;
  const std::size_t lo = seg.start > pad ? seg.start - pad : 0;
  const std::size_t hi = std::min(seg.end + pad, motion.size());
  const std::span<const double> accel(motion.lin_accel_y.data() + lo, hi - lo);
  const imu::VelocityEstimate vel = imu::estimate_velocity(accel, motion.dt());

  std::printf("=== Fig. 9(a,b): slide acceleration, integral vs corrected speed ===\n");
  std::printf("drift slope err_a = %.4f m/s^2 (Eq. 4)\n", vel.drift_slope);
  std::printf("%8s %14s %14s %14s\n", "t (s)", "accel", "integral v", "corrected v");
  for (std::size_t i = 0; i < accel.size(); i += 2) {
    std::printf("%8.2f %14.3f %14.4f %14.4f\n", static_cast<double>(i) * motion.dt(),
                accel[i], vel.raw[i], vel.corrected[i]);
  }
  std::printf("\nend-of-slide velocity: integral %+0.4f m/s -> corrected %+0.4f m/s\n",
              vel.raw.back(), vel.corrected.back());
  const double disp_raw = trapezoid(vel.raw, motion.dt());
  const double disp_corr = trapezoid(vel.corrected, motion.dt());
  const double truth = distance(s.truth.slides[0].to, s.truth.slides[0].from);
  std::printf("displacement: raw %.3f m, corrected %.3f m, truth %.3f m\n", disp_raw,
              disp_corr, truth);
  return 0;
}
