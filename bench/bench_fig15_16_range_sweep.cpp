/// Reproduces the paper's Figs. 15-16: CDFs of 2D localization error at
/// operational ranges 1/2/3/5/7 m, phone on the slide ruler with 50-60 cm
/// slides, for both the Galaxy S4 (Fig. 15) and the Galaxy Note3 (Fig. 16).
/// Paper reference (S4): mean/90% = 2.0/3.5 cm at 1 m and 14.4/22.3 cm at
/// 7 m; the Note3 tracks slightly worse.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/pipeline.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace hyperear;
  const int n_trials = bench::trials(8);
  const double ranges[] = {1.0, 2.0, 3.0, 5.0, 7.0};

  int fig = 15;
  for (const sim::PhoneSpec& phone : {sim::galaxy_s4(), sim::galaxy_note3()}) {
    std::printf("=== Fig. %d: 2D error CDF vs range (%s, ruler, slide 50-60 cm) ===\n",
                fig++, phone.name.c_str());
    for (double range : ranges) {
      std::vector<double> errors;
      for (int t = 0; t < n_trials; ++t) {
        sim::ScenarioConfig c;
        c.phone = phone;
        c.environment = sim::meeting_room_quiet();
        c.speaker_distance = range;
        c.speaker_height = 1.3;
        c.phone_height = 1.3;
        c.slides_per_stature = 5;
        c.calibration_duration = 3.0;
        c.hold_duration = 0.7;
        c.jitter = sim::ruler_jitter();
        Rng rng(static_cast<std::uint64_t>(1500 + t * 37) + static_cast<std::uint64_t>(range * 101) +
                (phone.name == "Galaxy S4" ? 0 : 5000));
        c.slide_distance = rng.uniform(0.50, 0.60);
        const sim::Session s = sim::make_localization_session(c, rng);
        const auto fix = core::try_localize(s);
        if (!fix.has_value() || !fix->valid) continue;
        errors.push_back(core::localization_error(*fix, s));
      }
      bench::print_cdf(phone.name + std::string(" @") + std::to_string(int(range)) + "m",
                       errors, 0.6);
    }
  }
  std::printf("\npaper reference (S4): 2.0/3.5 cm at 1 m; 14.4/22.3 cm at 7 m (mean/p90)\n");
  return 0;
}
