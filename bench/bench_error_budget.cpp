/// Analytic-vs-simulated error budget: the first-order model of
/// core/error_model.hpp against the full pipeline at each of the paper's
/// ranges, in the ruler and hand-held conditions. The analytic curve is the
/// CRLB-flavoured companion to Figs. 15-17: if the simulation and the model
/// diverge, either the physics or the pipeline is leaving accuracy on the
/// table.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/error_model.hpp"
#include "core/pipeline.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace hyperear;
  const int n_trials = bench::trials(6);

  std::printf("=== Analytic error budget vs simulated pipeline (S4, 2D) ===\n");
  std::printf("%8s %12s | %12s %12s %12s | %12s\n", "range", "condition", "timing",
              "displacement", "rotation", "simulated");
  for (const bool hand : {false, true}) {
    for (double range : {1.0, 3.0, 5.0, 7.0}) {
      core::ErrorBudgetInput in;
      in.range = range;
      in.pairs_per_slide = 9;
      in.slides = 5;
      if (hand) {
        in.displacement_sigma = 0.012;
        in.residual_yaw_sigma = 0.004;
        in.timing_sigma_s = 4e-6;
      } else {
        in.displacement_sigma = 0.002;
        in.residual_yaw_sigma = 0.0003;
        in.timing_sigma_s = 4e-6;
      }
      const core::ErrorBudget budget = core::predict_range_error(in);

      std::vector<double> range_errors;
      for (int t = 0; t < n_trials; ++t) {
        sim::ScenarioConfig c;
        c.phone = sim::galaxy_s4();
        c.environment = sim::meeting_room_quiet();
        c.speaker_distance = range;
        c.speaker_height = 1.3;
        c.phone_height = 1.3;
        c.slides_per_stature = 5;
        c.calibration_duration = 3.0;
        c.hold_duration = 0.7;
        c.jitter = hand ? sim::hand_jitter() : sim::ruler_jitter();
        Rng rng(static_cast<std::uint64_t>(2700 + t * 67) + static_cast<std::uint64_t>(range * 11) +
                (hand ? 500 : 0));
        const sim::Session s = sim::make_localization_session(c, rng);
        const auto fix = core::try_localize(s);
        if (!fix.has_value() || !fix->valid) continue;
        range_errors.push_back(std::abs(fix->range - range));
      }
      const double simulated =
          range_errors.empty() ? -1.0 : mean(range_errors);
      std::printf("%7.0fm %12s | %10.1fcm %10.1fcm %10.1fcm | %10.1fcm\n", range,
                  hand ? "hand-held" : "ruler", 100.0 * budget.timing,
                  100.0 * budget.displacement, 100.0 * budget.rotation,
                  100.0 * simulated);
    }
  }
  std::printf("\n(simulated = mean |range error| over %d sessions; the analytic\n"
              "columns are 1-sigma contributions, so same-order agreement is the\n"
              "success criterion, not equality)\n",
              n_trials);
  return 0;
}
