/// Extension bench for the paper's Section II-C observation that audio
/// hardware supports up to 192 kHz while the OS limits apps to 44.1 kHz:
/// how much accuracy does the higher rate buy? Sweeps the ADC rate with
/// everything else fixed (ruler, 5 m). Eq. 2's hyperbola count scales
/// linearly with fs; with sub-sample interpolation the practical gain is
/// smaller - this bench measures it.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "core/pipeline.hpp"
#include "geom/hyperbola.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace hyperear;
  const int n_trials = bench::trials(5);

  std::printf("=== ADC sampling-rate sweep (S4 geometry, ruler, 5 m) ===\n");
  for (double fs : {22050.0, 44100.0, 96000.0}) {
    std::printf("\nfs = %.0f Hz: Eq. 2 N = %d (phone body), %d (55 cm slide)\n", fs,
                geom::distinguishable_hyperbola_count(kGalaxyS4MicSeparation, fs,
                                                      kSpeedOfSound),
                geom::distinguishable_hyperbola_count(0.55, fs, kSpeedOfSound));
    std::vector<double> errors;
    for (int t = 0; t < n_trials; ++t) {
      sim::ScenarioConfig c;
      c.phone = sim::galaxy_s4();
      c.phone.adc.sample_rate = fs;
      c.environment = sim::meeting_room_quiet();
      c.speaker_distance = 5.0;
      c.speaker_height = 1.3;
      c.phone_height = 1.3;
      c.slides_per_stature = 3;
      c.calibration_duration = 3.0;
      c.hold_duration = 0.7;
      c.jitter = sim::ruler_jitter();
      Rng rng(static_cast<std::uint64_t>(2500 + t * 61) + static_cast<std::uint64_t>(fs));
      const sim::Session s = sim::make_localization_session(c, rng);
      const auto fix = core::try_localize(s);
      if (!fix.has_value() || !fix->valid) continue;
      errors.push_back(core::localization_error(*fix, s));
    }
    bench::print_summary("fs " + std::to_string(int(fs)) + " Hz", errors);
  }
  std::printf("\nSub-sample interpolation already recovers most of the timing\n"
              "resolution, so the rate sweep mostly moves the noise floor.\n");
  return 0;
}
