/// Open-loop load generator for the serving layer: a seeded arrival
/// process (Poisson inter-arrival gaps with periodic zero-gap bursts)
/// drives runtime::Server at stepped offered rates — fractions and
/// multiples of the measured per-thread service capacity, plus a zero-gap
/// burst rung that is past saturation by construction — over a mixed
/// traffic pool (2D and 3D protocols, four environments, two chirp plans
/// so both shards see work, ~30% streaming-class requests). Open-loop
/// means arrivals NEVER wait for completions: past saturation the server
/// must shed, and the bench records that the queue stayed within its
/// bound while it did (the bounded-p99 story; the schema check in
/// bench_json.hpp enforces the saturation rung kept shedding).
///
/// Output: BENCH_load.json —
///   server_load_p50 / offered-*        p50 completed-request latency (ns);
///                                      n = submitted, bytes = completed
///   server_load_p99 / offered-*        p99 of the same distribution
///   server_load_throughput / offered-* ns of makespan per completed
///                                      request; bytes = unserved
///                                      (shed + expired + cancelled)
///   server_load_queue / offered-*      n = configured max_queued, bytes =
///                                      observed peak depth (schema:
///                                      bytes <= n — bounded queue)
///
/// A final manual-dispatch replay phase submits one seeded request stream
/// twice and exits nonzero unless admissions, outcomes, shards, and every
/// result bit agree — the generator-determinism check the bench-smoke
/// ctest entry runs on every default ctest invocation.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_json.hpp"
#include "runtime/server.hpp"
#include "sim/environment.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace hyperear;
using Clock = std::chrono::steady_clock;

/// Mixed traffic: environments from quiet meeting room to busy mall,
/// ruler and handheld jitter, the 3D two-stature protocol, and a second
/// chirp plan (different plan_key_hash, so the shard keyed to it gets its
/// own traffic).
std::vector<sim::Session> make_traffic_mix(bool smoke) {
  const auto base = [] {
    sim::ScenarioConfig c;
    c.speaker_distance = 4.0;
    c.slides_per_stature = 3;
    c.calibration_duration = 3.0;
    c.jitter = sim::ruler_jitter();
    return c;
  };
  std::vector<sim::ScenarioConfig> configs;
  configs.push_back(base());  // meeting room, quiet, ruler, 2D
  {
    sim::ScenarioConfig c = base();
    c.environment = sim::meeting_room_chatting();
    c.jitter = sim::hand_jitter();
    c.speaker_distance = 5.0;
    configs.push_back(c);
  }
  {
    sim::ScenarioConfig c = base();
    c.environment = sim::mall_off_peak();
    // Second DSP plan key; 5800 Hz specifically hashes to the odd shard
    // under the 2-shard bench layout, so both shards see traffic.
    c.speaker.chirp.freq_high_hz = 5800.0;
    configs.push_back(c);
  }
  if (!smoke) {
    {
      sim::ScenarioConfig c = base();
      c.environment = sim::mall_busy_hour();
      c.jitter = sim::hand_jitter();
      configs.push_back(c);
    }
    {
      sim::ScenarioConfig c = base();
      c.two_statures = true;  // full 3D protocol
      configs.push_back(c);
    }
    {
      sim::ScenarioConfig c = base();
      c.environment = sim::meeting_room_chatting();
      c.speaker.chirp.freq_high_hz = 6200.0;  // also maps to the odd shard
      configs.push_back(c);
    }
  }
  std::vector<sim::Session> pool;
  pool.reserve(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    Rng rng(8200 + i);
    pool.push_back(sim::make_localization_session(configs[i], rng));
  }
  return pool;
}

/// Mean per-session service time on one warm worker — the capacity anchor
/// the offered-rate ladder is calibrated against.
double mean_service_ms(const std::vector<sim::Session>& pool) {
  runtime::BatchEngine engine({}, 1);
  (void)engine.localize_all(pool);  // warm plans and workspace
  const Clock::time_point t0 = Clock::now();
  (void)engine.localize_all(pool);
  const double wall =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  return wall / static_cast<double>(pool.size());
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

struct RungOutcome {
  runtime::ServerStats stats;
  std::vector<double> completed_latency_ms;
  double makespan_ms = 0.0;
  std::size_t offered = 0;
};

/// One offered-rate rung: a fresh server, `offered` seeded arrivals at
/// `rate_rps` (Poisson gaps, every fifth arrival a zero-gap burst rider),
/// drained to quiescence. `rate_rps <= 0` is the burst rung: every gap is
/// zero, the open-loop limit.
RungOutcome run_rung(const std::vector<sim::Session>& pool,
                     const runtime::ServerOptions& opts, double rate_rps,
                     std::size_t offered, std::uint64_t seed) {
  runtime::Server server({}, opts);
  Rng rng(seed);
  std::vector<std::future<runtime::Response>> futures;
  futures.reserve(offered);
  const Clock::time_point start = Clock::now();
  double offset_s = 0.0;
  for (std::size_t i = 0; i < offered; ++i) {
    if (rate_rps > 0.0) {
      double gap_s = -std::log(1.0 - rng.uniform()) / rate_rps;
      if (i % 5 == 4) gap_s = 0.0;  // burst rider on the Poisson base
      offset_s += gap_s;
      std::this_thread::sleep_until(start + std::chrono::duration<double>(offset_s));
    }
    const sim::Session& session = pool[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
    const runtime::RequestClass cls = rng.uniform_int(0, 9) < 3
                                          ? runtime::RequestClass::streaming
                                          : runtime::RequestClass::batch;
    runtime::SubmitResult r = server.submit(session, cls);
    if (r.admission == runtime::Admission::accepted) {
      futures.push_back(std::move(r.response));
    }
  }
  server.drain();
  RungOutcome out;
  out.makespan_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  out.offered = offered;
  for (std::future<runtime::Response>& f : futures) {
    const runtime::Response response = f.get();
    if (response.outcome == runtime::RequestOutcome::completed) {
      out.completed_latency_ms.push_back(response.latency_ms);
    }
  }
  out.stats = server.stats();
  server.shutdown();
  return out;
}

/// One seeded manual-dispatch request stream, reduced to a deterministic
/// transcript: admission, outcome, shard, and exact result bits (hex
/// floats) per request. Latencies are excluded — they are the one
/// timing-dependent field.
std::vector<std::string> replay_transcript(const std::vector<sim::Session>& pool,
                                           std::uint64_t seed) {
  runtime::ServerOptions opts;
  opts.shards = 2;
  opts.threads_per_shard = 1;
  opts.max_in_flight = 2;
  opts.max_queued = 12;
  opts.manual_dispatch = true;
  opts.streaming_policy.deadline_ticks = 2;  // streaming class will expire
  runtime::Server server({}, opts);
  Rng rng(seed);
  constexpr std::size_t kRequests = 10;
  std::vector<std::future<runtime::Response>> futures;
  std::vector<std::string> transcript;
  for (std::size_t i = 0; i < kRequests; ++i) {
    const sim::Session& session = pool[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
    const runtime::RequestClass cls = rng.uniform_int(0, 2) == 0
                                          ? runtime::RequestClass::streaming
                                          : runtime::RequestClass::batch;
    runtime::SubmitResult r = server.submit(session, cls);
    transcript.emplace_back(runtime::to_string(r.admission));
    if (r.admission == runtime::Admission::accepted) {
      futures.push_back(std::move(r.response));
    }
  }
  // Past the streaming deadline before anything dispatches: the expiry
  // set is a pure function of the stream, not of engine timing.
  server.tick();
  server.tick();
  server.tick();
  server.drain();
  for (std::future<runtime::Response>& f : futures) {
    const runtime::Response response = f.get();
    char line[256];
    std::snprintf(line, sizeof line, "%s %s shard=%zu status=%d %a %a %a %a",
                  runtime::to_string(response.outcome),
                  runtime::to_string(response.cls), response.shard,
                  static_cast<int>(response.report.status),
                  response.report.result.estimated_position.x,
                  response.report.result.estimated_position.y,
                  response.report.result.range,
                  response.report.result.sfo_ppm);
    transcript.emplace_back(line);
  }
  server.shutdown();
  return transcript;
}

}  // namespace

int main() {
  const bool smoke = bench::smoke_mode();
  const std::vector<sim::Session> pool = make_traffic_mix(smoke);

  runtime::ServerOptions opts;
  opts.shards = 2;
  opts.threads_per_shard = smoke ? 1 : 2;
  const std::size_t total_threads = opts.shards * opts.threads_per_shard;
  opts.max_in_flight = total_threads;
  opts.max_queued = 6;
  opts.streaming_chunk_samples = 4410;  // 100 ms cadence at 44.1 kHz

  const double mean_ms = mean_service_ms(pool);
  const double capacity_rps =
      1000.0 * static_cast<double>(total_threads) / mean_ms;
  std::printf("# mean service %.1f ms/session, capacity %.1f req/s "
              "(%zu threads across %zu shards)\n",
              mean_ms, capacity_rps, total_threads, opts.shards);

  struct Rung {
    const char* label;
    double multiplier;  ///< of measured capacity; <= 0 = zero-gap burst
  };
  const std::vector<Rung> ladder =
      smoke ? std::vector<Rung>{{"offered-0.25x", 0.25},
                                {"offered-1.0x", 1.0},
                                {"offered-4.0x", 4.0},
                                {"offered-burst", 0.0}}
            : std::vector<Rung>{{"offered-0.25x", 0.25},
                                {"offered-0.75x", 0.75},
                                {"offered-1.5x", 1.5},
                                {"offered-4.0x", 4.0},
                                {"offered-burst", 0.0}};
  // The burst rung offers twice the server's total admission capacity
  // back-to-back, so it sheds no matter how fast the hardware is.
  const std::size_t rung_requests = smoke ? 8 : 24;
  const std::size_t burst_requests = 2 * (opts.max_in_flight + opts.max_queued);

  std::vector<bench::BenchRow> rows;
  for (std::size_t r = 0; r < ladder.size(); ++r) {
    const Rung& rung = ladder[r];
    const bool burst = rung.multiplier <= 0.0;
    const double rate = burst ? 0.0 : rung.multiplier * capacity_rps;
    const std::size_t offered = burst ? burst_requests : rung_requests;
    const RungOutcome out = run_rung(pool, opts, rate, offered, 8300 + r);
    const runtime::ServerStats& s = out.stats;
    const std::size_t unserved = s.shed + s.expired + s.cancelled;
    const double p50 = percentile(out.completed_latency_ms, 0.50);
    const double p99 = percentile(out.completed_latency_ms, 0.99);
    const double makespan_ns = out.makespan_ms * 1e6;
    const std::size_t completed = std::max<std::size_t>(s.completed, 1);
    std::printf("# %-14s offered=%-3zu completed=%-3zu shed=%-3zu "
                "peak_queue=%zu/%zu p50=%.0fms p99=%.0fms\n",
                rung.label, out.offered, s.completed, unserved, s.peak_queued,
                opts.max_queued, p50, p99);
    rows.push_back({"server_load_p50", rung.label, out.offered,
                    std::max(p50, 1e-3) * 1e6, s.completed});
    rows.push_back({"server_load_p99", rung.label, out.offered,
                    std::max(p99, 1e-3) * 1e6, s.completed});
    rows.push_back({"server_load_throughput", rung.label, completed,
                    makespan_ns / static_cast<double>(completed), unserved});
    rows.push_back({"server_load_queue", rung.label, opts.max_queued,
                    makespan_ns / static_cast<double>(out.offered),
                    s.peak_queued});
  }

  // Generator determinism: one seeded stream, replayed, must transcribe
  // identically down to the result bits.
  const std::vector<std::string> first = replay_transcript(pool, 8400);
  const std::vector<std::string> second = replay_transcript(pool, 8400);
  if (first != second) {
    std::fprintf(stderr, "bench_load: replay transcripts diverge\n");
    const std::size_t n = std::min(first.size(), second.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (first[i] != second[i]) {
        std::fprintf(stderr, "  event %zu:\n    %s\n    %s\n", i,
                     first[i].c_str(), second[i].c_str());
      }
    }
    return 1;
  }
  std::printf("# replay determinism: OK (%zu events bit-identical)\n",
              first.size());

  bench::write_bench_json("BENCH_load.json", rows);
  return 0;
}
