
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/acoustic_renderer.cpp" "src/CMakeFiles/hyperear_sim.dir/sim/acoustic_renderer.cpp.o" "gcc" "src/CMakeFiles/hyperear_sim.dir/sim/acoustic_renderer.cpp.o.d"
  "/root/repo/src/sim/environment.cpp" "src/CMakeFiles/hyperear_sim.dir/sim/environment.cpp.o" "gcc" "src/CMakeFiles/hyperear_sim.dir/sim/environment.cpp.o.d"
  "/root/repo/src/sim/image_source.cpp" "src/CMakeFiles/hyperear_sim.dir/sim/image_source.cpp.o" "gcc" "src/CMakeFiles/hyperear_sim.dir/sim/image_source.cpp.o.d"
  "/root/repo/src/sim/microphone.cpp" "src/CMakeFiles/hyperear_sim.dir/sim/microphone.cpp.o" "gcc" "src/CMakeFiles/hyperear_sim.dir/sim/microphone.cpp.o.d"
  "/root/repo/src/sim/noise.cpp" "src/CMakeFiles/hyperear_sim.dir/sim/noise.cpp.o" "gcc" "src/CMakeFiles/hyperear_sim.dir/sim/noise.cpp.o.d"
  "/root/repo/src/sim/phone.cpp" "src/CMakeFiles/hyperear_sim.dir/sim/phone.cpp.o" "gcc" "src/CMakeFiles/hyperear_sim.dir/sim/phone.cpp.o.d"
  "/root/repo/src/sim/scenario.cpp" "src/CMakeFiles/hyperear_sim.dir/sim/scenario.cpp.o" "gcc" "src/CMakeFiles/hyperear_sim.dir/sim/scenario.cpp.o.d"
  "/root/repo/src/sim/speaker.cpp" "src/CMakeFiles/hyperear_sim.dir/sim/speaker.cpp.o" "gcc" "src/CMakeFiles/hyperear_sim.dir/sim/speaker.cpp.o.d"
  "/root/repo/src/sim/trajectory.cpp" "src/CMakeFiles/hyperear_sim.dir/sim/trajectory.cpp.o" "gcc" "src/CMakeFiles/hyperear_sim.dir/sim/trajectory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hyperear_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hyperear_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hyperear_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hyperear_imu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
