file(REMOVE_RECURSE
  "CMakeFiles/hyperear_sim.dir/sim/acoustic_renderer.cpp.o"
  "CMakeFiles/hyperear_sim.dir/sim/acoustic_renderer.cpp.o.d"
  "CMakeFiles/hyperear_sim.dir/sim/environment.cpp.o"
  "CMakeFiles/hyperear_sim.dir/sim/environment.cpp.o.d"
  "CMakeFiles/hyperear_sim.dir/sim/image_source.cpp.o"
  "CMakeFiles/hyperear_sim.dir/sim/image_source.cpp.o.d"
  "CMakeFiles/hyperear_sim.dir/sim/microphone.cpp.o"
  "CMakeFiles/hyperear_sim.dir/sim/microphone.cpp.o.d"
  "CMakeFiles/hyperear_sim.dir/sim/noise.cpp.o"
  "CMakeFiles/hyperear_sim.dir/sim/noise.cpp.o.d"
  "CMakeFiles/hyperear_sim.dir/sim/phone.cpp.o"
  "CMakeFiles/hyperear_sim.dir/sim/phone.cpp.o.d"
  "CMakeFiles/hyperear_sim.dir/sim/scenario.cpp.o"
  "CMakeFiles/hyperear_sim.dir/sim/scenario.cpp.o.d"
  "CMakeFiles/hyperear_sim.dir/sim/speaker.cpp.o"
  "CMakeFiles/hyperear_sim.dir/sim/speaker.cpp.o.d"
  "CMakeFiles/hyperear_sim.dir/sim/trajectory.cpp.o"
  "CMakeFiles/hyperear_sim.dir/sim/trajectory.cpp.o.d"
  "libhyperear_sim.a"
  "libhyperear_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperear_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
