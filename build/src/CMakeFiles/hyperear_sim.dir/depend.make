# Empty dependencies file for hyperear_sim.
# This may be replaced when dependencies are built.
