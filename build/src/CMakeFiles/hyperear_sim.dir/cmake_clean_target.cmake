file(REMOVE_RECURSE
  "libhyperear_sim.a"
)
