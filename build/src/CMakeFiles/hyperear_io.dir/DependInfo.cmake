
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/csv.cpp" "src/CMakeFiles/hyperear_io.dir/io/csv.cpp.o" "gcc" "src/CMakeFiles/hyperear_io.dir/io/csv.cpp.o.d"
  "/root/repo/src/io/wav.cpp" "src/CMakeFiles/hyperear_io.dir/io/wav.cpp.o" "gcc" "src/CMakeFiles/hyperear_io.dir/io/wav.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hyperear_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hyperear_imu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hyperear_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hyperear_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
