# Empty compiler generated dependencies file for hyperear_io.
# This may be replaced when dependencies are built.
