file(REMOVE_RECURSE
  "libhyperear_io.a"
)
