file(REMOVE_RECURSE
  "CMakeFiles/hyperear_io.dir/io/csv.cpp.o"
  "CMakeFiles/hyperear_io.dir/io/csv.cpp.o.d"
  "CMakeFiles/hyperear_io.dir/io/wav.cpp.o"
  "CMakeFiles/hyperear_io.dir/io/wav.cpp.o.d"
  "libhyperear_io.a"
  "libhyperear_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperear_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
