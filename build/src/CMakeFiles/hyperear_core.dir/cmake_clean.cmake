file(REMOVE_RECURSE
  "CMakeFiles/hyperear_core.dir/core/aoa.cpp.o"
  "CMakeFiles/hyperear_core.dir/core/aoa.cpp.o.d"
  "CMakeFiles/hyperear_core.dir/core/asp.cpp.o"
  "CMakeFiles/hyperear_core.dir/core/asp.cpp.o.d"
  "CMakeFiles/hyperear_core.dir/core/calibration.cpp.o"
  "CMakeFiles/hyperear_core.dir/core/calibration.cpp.o.d"
  "CMakeFiles/hyperear_core.dir/core/discovery.cpp.o"
  "CMakeFiles/hyperear_core.dir/core/discovery.cpp.o.d"
  "CMakeFiles/hyperear_core.dir/core/error_model.cpp.o"
  "CMakeFiles/hyperear_core.dir/core/error_model.cpp.o.d"
  "CMakeFiles/hyperear_core.dir/core/naive.cpp.o"
  "CMakeFiles/hyperear_core.dir/core/naive.cpp.o.d"
  "CMakeFiles/hyperear_core.dir/core/nlos.cpp.o"
  "CMakeFiles/hyperear_core.dir/core/nlos.cpp.o.d"
  "CMakeFiles/hyperear_core.dir/core/pipeline.cpp.o"
  "CMakeFiles/hyperear_core.dir/core/pipeline.cpp.o.d"
  "CMakeFiles/hyperear_core.dir/core/ple.cpp.o"
  "CMakeFiles/hyperear_core.dir/core/ple.cpp.o.d"
  "CMakeFiles/hyperear_core.dir/core/protocol.cpp.o"
  "CMakeFiles/hyperear_core.dir/core/protocol.cpp.o.d"
  "CMakeFiles/hyperear_core.dir/core/sdf.cpp.o"
  "CMakeFiles/hyperear_core.dir/core/sdf.cpp.o.d"
  "CMakeFiles/hyperear_core.dir/core/tracker.cpp.o"
  "CMakeFiles/hyperear_core.dir/core/tracker.cpp.o.d"
  "CMakeFiles/hyperear_core.dir/core/ttl.cpp.o"
  "CMakeFiles/hyperear_core.dir/core/ttl.cpp.o.d"
  "libhyperear_core.a"
  "libhyperear_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperear_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
