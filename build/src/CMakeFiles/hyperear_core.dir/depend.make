# Empty dependencies file for hyperear_core.
# This may be replaced when dependencies are built.
