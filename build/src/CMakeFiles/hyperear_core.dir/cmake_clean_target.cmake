file(REMOVE_RECURSE
  "libhyperear_core.a"
)
