
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aoa.cpp" "src/CMakeFiles/hyperear_core.dir/core/aoa.cpp.o" "gcc" "src/CMakeFiles/hyperear_core.dir/core/aoa.cpp.o.d"
  "/root/repo/src/core/asp.cpp" "src/CMakeFiles/hyperear_core.dir/core/asp.cpp.o" "gcc" "src/CMakeFiles/hyperear_core.dir/core/asp.cpp.o.d"
  "/root/repo/src/core/calibration.cpp" "src/CMakeFiles/hyperear_core.dir/core/calibration.cpp.o" "gcc" "src/CMakeFiles/hyperear_core.dir/core/calibration.cpp.o.d"
  "/root/repo/src/core/discovery.cpp" "src/CMakeFiles/hyperear_core.dir/core/discovery.cpp.o" "gcc" "src/CMakeFiles/hyperear_core.dir/core/discovery.cpp.o.d"
  "/root/repo/src/core/error_model.cpp" "src/CMakeFiles/hyperear_core.dir/core/error_model.cpp.o" "gcc" "src/CMakeFiles/hyperear_core.dir/core/error_model.cpp.o.d"
  "/root/repo/src/core/naive.cpp" "src/CMakeFiles/hyperear_core.dir/core/naive.cpp.o" "gcc" "src/CMakeFiles/hyperear_core.dir/core/naive.cpp.o.d"
  "/root/repo/src/core/nlos.cpp" "src/CMakeFiles/hyperear_core.dir/core/nlos.cpp.o" "gcc" "src/CMakeFiles/hyperear_core.dir/core/nlos.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/CMakeFiles/hyperear_core.dir/core/pipeline.cpp.o" "gcc" "src/CMakeFiles/hyperear_core.dir/core/pipeline.cpp.o.d"
  "/root/repo/src/core/ple.cpp" "src/CMakeFiles/hyperear_core.dir/core/ple.cpp.o" "gcc" "src/CMakeFiles/hyperear_core.dir/core/ple.cpp.o.d"
  "/root/repo/src/core/protocol.cpp" "src/CMakeFiles/hyperear_core.dir/core/protocol.cpp.o" "gcc" "src/CMakeFiles/hyperear_core.dir/core/protocol.cpp.o.d"
  "/root/repo/src/core/sdf.cpp" "src/CMakeFiles/hyperear_core.dir/core/sdf.cpp.o" "gcc" "src/CMakeFiles/hyperear_core.dir/core/sdf.cpp.o.d"
  "/root/repo/src/core/tracker.cpp" "src/CMakeFiles/hyperear_core.dir/core/tracker.cpp.o" "gcc" "src/CMakeFiles/hyperear_core.dir/core/tracker.cpp.o.d"
  "/root/repo/src/core/ttl.cpp" "src/CMakeFiles/hyperear_core.dir/core/ttl.cpp.o" "gcc" "src/CMakeFiles/hyperear_core.dir/core/ttl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hyperear_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hyperear_imu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hyperear_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hyperear_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hyperear_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hyperear_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
