# Empty dependencies file for hyperear_imu.
# This may be replaced when dependencies are built.
