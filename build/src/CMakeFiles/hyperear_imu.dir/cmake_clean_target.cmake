file(REMOVE_RECURSE
  "libhyperear_imu.a"
)
