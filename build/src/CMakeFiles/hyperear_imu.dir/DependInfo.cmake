
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/imu/displacement.cpp" "src/CMakeFiles/hyperear_imu.dir/imu/displacement.cpp.o" "gcc" "src/CMakeFiles/hyperear_imu.dir/imu/displacement.cpp.o.d"
  "/root/repo/src/imu/gravity.cpp" "src/CMakeFiles/hyperear_imu.dir/imu/gravity.cpp.o" "gcc" "src/CMakeFiles/hyperear_imu.dir/imu/gravity.cpp.o.d"
  "/root/repo/src/imu/imu_model.cpp" "src/CMakeFiles/hyperear_imu.dir/imu/imu_model.cpp.o" "gcc" "src/CMakeFiles/hyperear_imu.dir/imu/imu_model.cpp.o.d"
  "/root/repo/src/imu/preprocess.cpp" "src/CMakeFiles/hyperear_imu.dir/imu/preprocess.cpp.o" "gcc" "src/CMakeFiles/hyperear_imu.dir/imu/preprocess.cpp.o.d"
  "/root/repo/src/imu/segmentation.cpp" "src/CMakeFiles/hyperear_imu.dir/imu/segmentation.cpp.o" "gcc" "src/CMakeFiles/hyperear_imu.dir/imu/segmentation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hyperear_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hyperear_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hyperear_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
