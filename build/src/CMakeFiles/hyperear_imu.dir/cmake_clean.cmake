file(REMOVE_RECURSE
  "CMakeFiles/hyperear_imu.dir/imu/displacement.cpp.o"
  "CMakeFiles/hyperear_imu.dir/imu/displacement.cpp.o.d"
  "CMakeFiles/hyperear_imu.dir/imu/gravity.cpp.o"
  "CMakeFiles/hyperear_imu.dir/imu/gravity.cpp.o.d"
  "CMakeFiles/hyperear_imu.dir/imu/imu_model.cpp.o"
  "CMakeFiles/hyperear_imu.dir/imu/imu_model.cpp.o.d"
  "CMakeFiles/hyperear_imu.dir/imu/preprocess.cpp.o"
  "CMakeFiles/hyperear_imu.dir/imu/preprocess.cpp.o.d"
  "CMakeFiles/hyperear_imu.dir/imu/segmentation.cpp.o"
  "CMakeFiles/hyperear_imu.dir/imu/segmentation.cpp.o.d"
  "libhyperear_imu.a"
  "libhyperear_imu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperear_imu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
