
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/hyperbola.cpp" "src/CMakeFiles/hyperear_geom.dir/geom/hyperbola.cpp.o" "gcc" "src/CMakeFiles/hyperear_geom.dir/geom/hyperbola.cpp.o.d"
  "/root/repo/src/geom/least_squares.cpp" "src/CMakeFiles/hyperear_geom.dir/geom/least_squares.cpp.o" "gcc" "src/CMakeFiles/hyperear_geom.dir/geom/least_squares.cpp.o.d"
  "/root/repo/src/geom/projection.cpp" "src/CMakeFiles/hyperear_geom.dir/geom/projection.cpp.o" "gcc" "src/CMakeFiles/hyperear_geom.dir/geom/projection.cpp.o.d"
  "/root/repo/src/geom/rotation.cpp" "src/CMakeFiles/hyperear_geom.dir/geom/rotation.cpp.o" "gcc" "src/CMakeFiles/hyperear_geom.dir/geom/rotation.cpp.o.d"
  "/root/repo/src/geom/triangulation.cpp" "src/CMakeFiles/hyperear_geom.dir/geom/triangulation.cpp.o" "gcc" "src/CMakeFiles/hyperear_geom.dir/geom/triangulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hyperear_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
