file(REMOVE_RECURSE
  "libhyperear_geom.a"
)
