file(REMOVE_RECURSE
  "CMakeFiles/hyperear_geom.dir/geom/hyperbola.cpp.o"
  "CMakeFiles/hyperear_geom.dir/geom/hyperbola.cpp.o.d"
  "CMakeFiles/hyperear_geom.dir/geom/least_squares.cpp.o"
  "CMakeFiles/hyperear_geom.dir/geom/least_squares.cpp.o.d"
  "CMakeFiles/hyperear_geom.dir/geom/projection.cpp.o"
  "CMakeFiles/hyperear_geom.dir/geom/projection.cpp.o.d"
  "CMakeFiles/hyperear_geom.dir/geom/rotation.cpp.o"
  "CMakeFiles/hyperear_geom.dir/geom/rotation.cpp.o.d"
  "CMakeFiles/hyperear_geom.dir/geom/triangulation.cpp.o"
  "CMakeFiles/hyperear_geom.dir/geom/triangulation.cpp.o.d"
  "libhyperear_geom.a"
  "libhyperear_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperear_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
