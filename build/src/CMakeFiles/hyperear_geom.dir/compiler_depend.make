# Empty compiler generated dependencies file for hyperear_geom.
# This may be replaced when dependencies are built.
