file(REMOVE_RECURSE
  "CMakeFiles/hyperear_dsp.dir/dsp/biquad.cpp.o"
  "CMakeFiles/hyperear_dsp.dir/dsp/biquad.cpp.o.d"
  "CMakeFiles/hyperear_dsp.dir/dsp/chirp.cpp.o"
  "CMakeFiles/hyperear_dsp.dir/dsp/chirp.cpp.o.d"
  "CMakeFiles/hyperear_dsp.dir/dsp/correlation.cpp.o"
  "CMakeFiles/hyperear_dsp.dir/dsp/correlation.cpp.o.d"
  "CMakeFiles/hyperear_dsp.dir/dsp/fft.cpp.o"
  "CMakeFiles/hyperear_dsp.dir/dsp/fft.cpp.o.d"
  "CMakeFiles/hyperear_dsp.dir/dsp/fir.cpp.o"
  "CMakeFiles/hyperear_dsp.dir/dsp/fir.cpp.o.d"
  "CMakeFiles/hyperear_dsp.dir/dsp/matched_filter.cpp.o"
  "CMakeFiles/hyperear_dsp.dir/dsp/matched_filter.cpp.o.d"
  "CMakeFiles/hyperear_dsp.dir/dsp/peak.cpp.o"
  "CMakeFiles/hyperear_dsp.dir/dsp/peak.cpp.o.d"
  "CMakeFiles/hyperear_dsp.dir/dsp/resample.cpp.o"
  "CMakeFiles/hyperear_dsp.dir/dsp/resample.cpp.o.d"
  "CMakeFiles/hyperear_dsp.dir/dsp/sma.cpp.o"
  "CMakeFiles/hyperear_dsp.dir/dsp/sma.cpp.o.d"
  "CMakeFiles/hyperear_dsp.dir/dsp/spectrum.cpp.o"
  "CMakeFiles/hyperear_dsp.dir/dsp/spectrum.cpp.o.d"
  "CMakeFiles/hyperear_dsp.dir/dsp/stft.cpp.o"
  "CMakeFiles/hyperear_dsp.dir/dsp/stft.cpp.o.d"
  "CMakeFiles/hyperear_dsp.dir/dsp/window.cpp.o"
  "CMakeFiles/hyperear_dsp.dir/dsp/window.cpp.o.d"
  "libhyperear_dsp.a"
  "libhyperear_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperear_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
