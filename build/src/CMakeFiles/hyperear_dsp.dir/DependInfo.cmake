
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/biquad.cpp" "src/CMakeFiles/hyperear_dsp.dir/dsp/biquad.cpp.o" "gcc" "src/CMakeFiles/hyperear_dsp.dir/dsp/biquad.cpp.o.d"
  "/root/repo/src/dsp/chirp.cpp" "src/CMakeFiles/hyperear_dsp.dir/dsp/chirp.cpp.o" "gcc" "src/CMakeFiles/hyperear_dsp.dir/dsp/chirp.cpp.o.d"
  "/root/repo/src/dsp/correlation.cpp" "src/CMakeFiles/hyperear_dsp.dir/dsp/correlation.cpp.o" "gcc" "src/CMakeFiles/hyperear_dsp.dir/dsp/correlation.cpp.o.d"
  "/root/repo/src/dsp/fft.cpp" "src/CMakeFiles/hyperear_dsp.dir/dsp/fft.cpp.o" "gcc" "src/CMakeFiles/hyperear_dsp.dir/dsp/fft.cpp.o.d"
  "/root/repo/src/dsp/fir.cpp" "src/CMakeFiles/hyperear_dsp.dir/dsp/fir.cpp.o" "gcc" "src/CMakeFiles/hyperear_dsp.dir/dsp/fir.cpp.o.d"
  "/root/repo/src/dsp/matched_filter.cpp" "src/CMakeFiles/hyperear_dsp.dir/dsp/matched_filter.cpp.o" "gcc" "src/CMakeFiles/hyperear_dsp.dir/dsp/matched_filter.cpp.o.d"
  "/root/repo/src/dsp/peak.cpp" "src/CMakeFiles/hyperear_dsp.dir/dsp/peak.cpp.o" "gcc" "src/CMakeFiles/hyperear_dsp.dir/dsp/peak.cpp.o.d"
  "/root/repo/src/dsp/resample.cpp" "src/CMakeFiles/hyperear_dsp.dir/dsp/resample.cpp.o" "gcc" "src/CMakeFiles/hyperear_dsp.dir/dsp/resample.cpp.o.d"
  "/root/repo/src/dsp/sma.cpp" "src/CMakeFiles/hyperear_dsp.dir/dsp/sma.cpp.o" "gcc" "src/CMakeFiles/hyperear_dsp.dir/dsp/sma.cpp.o.d"
  "/root/repo/src/dsp/spectrum.cpp" "src/CMakeFiles/hyperear_dsp.dir/dsp/spectrum.cpp.o" "gcc" "src/CMakeFiles/hyperear_dsp.dir/dsp/spectrum.cpp.o.d"
  "/root/repo/src/dsp/stft.cpp" "src/CMakeFiles/hyperear_dsp.dir/dsp/stft.cpp.o" "gcc" "src/CMakeFiles/hyperear_dsp.dir/dsp/stft.cpp.o.d"
  "/root/repo/src/dsp/window.cpp" "src/CMakeFiles/hyperear_dsp.dir/dsp/window.cpp.o" "gcc" "src/CMakeFiles/hyperear_dsp.dir/dsp/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hyperear_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
