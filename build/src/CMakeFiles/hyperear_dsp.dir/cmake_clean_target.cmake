file(REMOVE_RECURSE
  "libhyperear_dsp.a"
)
