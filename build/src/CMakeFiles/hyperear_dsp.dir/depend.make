# Empty dependencies file for hyperear_dsp.
# This may be replaced when dependencies are built.
