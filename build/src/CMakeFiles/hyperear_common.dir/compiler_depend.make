# Empty compiler generated dependencies file for hyperear_common.
# This may be replaced when dependencies are built.
