file(REMOVE_RECURSE
  "CMakeFiles/hyperear_common.dir/common/cdf.cpp.o"
  "CMakeFiles/hyperear_common.dir/common/cdf.cpp.o.d"
  "CMakeFiles/hyperear_common.dir/common/math_util.cpp.o"
  "CMakeFiles/hyperear_common.dir/common/math_util.cpp.o.d"
  "CMakeFiles/hyperear_common.dir/common/rng.cpp.o"
  "CMakeFiles/hyperear_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/hyperear_common.dir/common/stats.cpp.o"
  "CMakeFiles/hyperear_common.dir/common/stats.cpp.o.d"
  "libhyperear_common.a"
  "libhyperear_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperear_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
