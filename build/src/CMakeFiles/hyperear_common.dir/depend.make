# Empty dependencies file for hyperear_common.
# This may be replaced when dependencies are built.
