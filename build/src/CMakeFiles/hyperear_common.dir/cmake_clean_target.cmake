file(REMOVE_RECURSE
  "libhyperear_common.a"
)
