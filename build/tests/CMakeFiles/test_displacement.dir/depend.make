# Empty dependencies file for test_displacement.
# This may be replaced when dependencies are built.
