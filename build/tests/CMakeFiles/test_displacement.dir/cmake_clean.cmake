file(REMOVE_RECURSE
  "CMakeFiles/test_displacement.dir/test_displacement.cpp.o"
  "CMakeFiles/test_displacement.dir/test_displacement.cpp.o.d"
  "test_displacement"
  "test_displacement.pdb"
  "test_displacement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_displacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
