# Empty dependencies file for test_image_source.
# This may be replaced when dependencies are built.
