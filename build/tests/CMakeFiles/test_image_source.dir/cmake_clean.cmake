file(REMOVE_RECURSE
  "CMakeFiles/test_image_source.dir/test_image_source.cpp.o"
  "CMakeFiles/test_image_source.dir/test_image_source.cpp.o.d"
  "test_image_source"
  "test_image_source.pdb"
  "test_image_source[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_image_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
