file(REMOVE_RECURSE
  "CMakeFiles/test_peak.dir/test_peak.cpp.o"
  "CMakeFiles/test_peak.dir/test_peak.cpp.o.d"
  "test_peak"
  "test_peak.pdb"
  "test_peak[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_peak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
