# Empty compiler generated dependencies file for test_peak.
# This may be replaced when dependencies are built.
