# Empty compiler generated dependencies file for test_matched_filter.
# This may be replaced when dependencies are built.
