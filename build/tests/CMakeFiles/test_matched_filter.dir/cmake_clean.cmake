file(REMOVE_RECURSE
  "CMakeFiles/test_matched_filter.dir/test_matched_filter.cpp.o"
  "CMakeFiles/test_matched_filter.dir/test_matched_filter.cpp.o.d"
  "test_matched_filter"
  "test_matched_filter.pdb"
  "test_matched_filter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matched_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
