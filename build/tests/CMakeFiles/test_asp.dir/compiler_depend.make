# Empty compiler generated dependencies file for test_asp.
# This may be replaced when dependencies are built.
