file(REMOVE_RECURSE
  "CMakeFiles/test_asp.dir/test_asp.cpp.o"
  "CMakeFiles/test_asp.dir/test_asp.cpp.o.d"
  "test_asp"
  "test_asp.pdb"
  "test_asp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
