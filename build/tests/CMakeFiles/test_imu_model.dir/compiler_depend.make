# Empty compiler generated dependencies file for test_imu_model.
# This may be replaced when dependencies are built.
