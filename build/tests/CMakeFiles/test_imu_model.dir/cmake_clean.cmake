file(REMOVE_RECURSE
  "CMakeFiles/test_imu_model.dir/test_imu_model.cpp.o"
  "CMakeFiles/test_imu_model.dir/test_imu_model.cpp.o.d"
  "test_imu_model"
  "test_imu_model.pdb"
  "test_imu_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_imu_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
