
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_wav.cpp" "tests/CMakeFiles/test_wav.dir/test_wav.cpp.o" "gcc" "tests/CMakeFiles/test_wav.dir/test_wav.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hyperear_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hyperear_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hyperear_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hyperear_imu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hyperear_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hyperear_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hyperear_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
