# Empty dependencies file for test_ple.
# This may be replaced when dependencies are built.
