file(REMOVE_RECURSE
  "CMakeFiles/test_ple.dir/test_ple.cpp.o"
  "CMakeFiles/test_ple.dir/test_ple.cpp.o.d"
  "test_ple"
  "test_ple.pdb"
  "test_ple[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
