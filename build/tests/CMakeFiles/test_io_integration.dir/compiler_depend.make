# Empty compiler generated dependencies file for test_io_integration.
# This may be replaced when dependencies are built.
