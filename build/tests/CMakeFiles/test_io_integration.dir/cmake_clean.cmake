file(REMOVE_RECURSE
  "CMakeFiles/test_io_integration.dir/test_io_integration.cpp.o"
  "CMakeFiles/test_io_integration.dir/test_io_integration.cpp.o.d"
  "test_io_integration"
  "test_io_integration.pdb"
  "test_io_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
