# Empty dependencies file for test_sma.
# This may be replaced when dependencies are built.
