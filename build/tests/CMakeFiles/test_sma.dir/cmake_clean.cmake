file(REMOVE_RECURSE
  "CMakeFiles/test_sma.dir/test_sma.cpp.o"
  "CMakeFiles/test_sma.dir/test_sma.cpp.o.d"
  "test_sma"
  "test_sma.pdb"
  "test_sma[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
