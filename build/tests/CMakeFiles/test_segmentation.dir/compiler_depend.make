# Empty compiler generated dependencies file for test_segmentation.
# This may be replaced when dependencies are built.
