file(REMOVE_RECURSE
  "CMakeFiles/test_phone_speaker.dir/test_phone_speaker.cpp.o"
  "CMakeFiles/test_phone_speaker.dir/test_phone_speaker.cpp.o.d"
  "test_phone_speaker"
  "test_phone_speaker.pdb"
  "test_phone_speaker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phone_speaker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
