# Empty dependencies file for test_phone_speaker.
# This may be replaced when dependencies are built.
