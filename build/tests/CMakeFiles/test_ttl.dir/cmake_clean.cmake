file(REMOVE_RECURSE
  "CMakeFiles/test_ttl.dir/test_ttl.cpp.o"
  "CMakeFiles/test_ttl.dir/test_ttl.cpp.o.d"
  "test_ttl"
  "test_ttl.pdb"
  "test_ttl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ttl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
