# Empty dependencies file for test_ttl.
# This may be replaced when dependencies are built.
