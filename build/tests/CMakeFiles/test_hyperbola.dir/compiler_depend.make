# Empty compiler generated dependencies file for test_hyperbola.
# This may be replaced when dependencies are built.
