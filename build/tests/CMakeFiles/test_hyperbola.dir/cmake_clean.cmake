file(REMOVE_RECURSE
  "CMakeFiles/test_hyperbola.dir/test_hyperbola.cpp.o"
  "CMakeFiles/test_hyperbola.dir/test_hyperbola.cpp.o.d"
  "test_hyperbola"
  "test_hyperbola.pdb"
  "test_hyperbola[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hyperbola.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
