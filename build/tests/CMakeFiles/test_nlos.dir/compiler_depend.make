# Empty compiler generated dependencies file for test_nlos.
# This may be replaced when dependencies are built.
