file(REMOVE_RECURSE
  "CMakeFiles/test_nlos.dir/test_nlos.cpp.o"
  "CMakeFiles/test_nlos.dir/test_nlos.cpp.o.d"
  "test_nlos"
  "test_nlos.pdb"
  "test_nlos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nlos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
