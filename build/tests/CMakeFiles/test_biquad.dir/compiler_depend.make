# Empty compiler generated dependencies file for test_biquad.
# This may be replaced when dependencies are built.
