file(REMOVE_RECURSE
  "CMakeFiles/hyperear_cli.dir/hyperear_cli.cpp.o"
  "CMakeFiles/hyperear_cli.dir/hyperear_cli.cpp.o.d"
  "hyperear_cli"
  "hyperear_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperear_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
