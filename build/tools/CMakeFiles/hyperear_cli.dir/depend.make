# Empty dependencies file for hyperear_cli.
# This may be replaced when dependencies are built.
