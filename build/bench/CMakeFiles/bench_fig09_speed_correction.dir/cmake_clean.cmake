file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_speed_correction.dir/bench_fig09_speed_correction.cpp.o"
  "CMakeFiles/bench_fig09_speed_correction.dir/bench_fig09_speed_correction.cpp.o.d"
  "bench_fig09_speed_correction"
  "bench_fig09_speed_correction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_speed_correction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
