# Empty compiler generated dependencies file for bench_fig09_speed_correction.
# This may be replaced when dependencies are built.
