file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_segmentation.dir/bench_fig08_segmentation.cpp.o"
  "CMakeFiles/bench_fig08_segmentation.dir/bench_fig08_segmentation.cpp.o.d"
  "bench_fig08_segmentation"
  "bench_fig08_segmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_segmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
