file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_sampling_rate.dir/bench_ext_sampling_rate.cpp.o"
  "CMakeFiles/bench_ext_sampling_rate.dir/bench_ext_sampling_rate.cpp.o.d"
  "bench_ext_sampling_rate"
  "bench_ext_sampling_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_sampling_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
