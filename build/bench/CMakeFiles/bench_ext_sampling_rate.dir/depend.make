# Empty dependencies file for bench_ext_sampling_rate.
# This may be replaced when dependencies are built.
