file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_alpha_tdoa.dir/bench_fig07_alpha_tdoa.cpp.o"
  "CMakeFiles/bench_fig07_alpha_tdoa.dir/bench_fig07_alpha_tdoa.cpp.o.d"
  "bench_fig07_alpha_tdoa"
  "bench_fig07_alpha_tdoa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_alpha_tdoa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
