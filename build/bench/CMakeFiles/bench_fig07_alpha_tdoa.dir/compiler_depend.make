# Empty compiler generated dependencies file for bench_fig07_alpha_tdoa.
# This may be replaced when dependencies are built.
