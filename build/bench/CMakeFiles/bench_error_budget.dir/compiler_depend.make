# Empty compiler generated dependencies file for bench_error_budget.
# This may be replaced when dependencies are built.
