file(REMOVE_RECURSE
  "CMakeFiles/bench_error_budget.dir/bench_error_budget.cpp.o"
  "CMakeFiles/bench_error_budget.dir/bench_error_budget.cpp.o.d"
  "bench_error_budget"
  "bench_error_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_error_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
