# Empty compiler generated dependencies file for bench_fig04_hyperbola_density.
# This may be replaced when dependencies are built.
