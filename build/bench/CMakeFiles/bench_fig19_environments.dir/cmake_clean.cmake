file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_environments.dir/bench_fig19_environments.cpp.o"
  "CMakeFiles/bench_fig19_environments.dir/bench_fig19_environments.cpp.o.d"
  "bench_fig19_environments"
  "bench_fig19_environments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_environments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
