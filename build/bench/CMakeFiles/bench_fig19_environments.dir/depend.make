# Empty dependencies file for bench_fig19_environments.
# This may be replaced when dependencies are built.
