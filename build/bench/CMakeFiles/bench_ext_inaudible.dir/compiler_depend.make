# Empty compiler generated dependencies file for bench_ext_inaudible.
# This may be replaced when dependencies are built.
