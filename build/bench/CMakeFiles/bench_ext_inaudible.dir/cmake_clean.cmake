file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_inaudible.dir/bench_ext_inaudible.cpp.o"
  "CMakeFiles/bench_ext_inaudible.dir/bench_ext_inaudible.cpp.o.d"
  "bench_ext_inaudible"
  "bench_ext_inaudible.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_inaudible.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
