# Empty compiler generated dependencies file for bench_tab_naive_ambiguity.
# This may be replaced when dependencies are built.
