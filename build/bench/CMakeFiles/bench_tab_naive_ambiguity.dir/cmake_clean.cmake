file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_naive_ambiguity.dir/bench_tab_naive_ambiguity.cpp.o"
  "CMakeFiles/bench_tab_naive_ambiguity.dir/bench_tab_naive_ambiguity.cpp.o.d"
  "bench_tab_naive_ambiguity"
  "bench_tab_naive_ambiguity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_naive_ambiguity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
