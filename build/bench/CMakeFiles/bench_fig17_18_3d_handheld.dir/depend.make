# Empty dependencies file for bench_fig17_18_3d_handheld.
# This may be replaced when dependencies are built.
