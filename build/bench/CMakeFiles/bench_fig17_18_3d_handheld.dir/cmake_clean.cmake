file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_18_3d_handheld.dir/bench_fig17_18_3d_handheld.cpp.o"
  "CMakeFiles/bench_fig17_18_3d_handheld.dir/bench_fig17_18_3d_handheld.cpp.o.d"
  "bench_fig17_18_3d_handheld"
  "bench_fig17_18_3d_handheld.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_18_3d_handheld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
