# Empty compiler generated dependencies file for bench_fig15_16_range_sweep.
# This may be replaced when dependencies are built.
