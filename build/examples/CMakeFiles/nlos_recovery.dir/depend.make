# Empty dependencies file for nlos_recovery.
# This may be replaced when dependencies are built.
