file(REMOVE_RECURSE
  "CMakeFiles/nlos_recovery.dir/nlos_recovery.cpp.o"
  "CMakeFiles/nlos_recovery.dir/nlos_recovery.cpp.o.d"
  "nlos_recovery"
  "nlos_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlos_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
