file(REMOVE_RECURSE
  "CMakeFiles/multi_tag.dir/multi_tag.cpp.o"
  "CMakeFiles/multi_tag.dir/multi_tag.cpp.o.d"
  "multi_tag"
  "multi_tag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
