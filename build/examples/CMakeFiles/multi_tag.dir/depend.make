# Empty dependencies file for multi_tag.
# This may be replaced when dependencies are built.
