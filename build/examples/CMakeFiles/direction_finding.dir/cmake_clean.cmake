file(REMOVE_RECURSE
  "CMakeFiles/direction_finding.dir/direction_finding.cpp.o"
  "CMakeFiles/direction_finding.dir/direction_finding.cpp.o.d"
  "direction_finding"
  "direction_finding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/direction_finding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
