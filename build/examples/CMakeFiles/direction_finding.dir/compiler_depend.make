# Empty compiler generated dependencies file for direction_finding.
# This may be replaced when dependencies are built.
