# Empty dependencies file for guided_search.
# This may be replaced when dependencies are built.
