file(REMOVE_RECURSE
  "CMakeFiles/guided_search.dir/guided_search.cpp.o"
  "CMakeFiles/guided_search.dir/guided_search.cpp.o.d"
  "guided_search"
  "guided_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guided_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
