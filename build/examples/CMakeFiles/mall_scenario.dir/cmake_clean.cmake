file(REMOVE_RECURSE
  "CMakeFiles/mall_scenario.dir/mall_scenario.cpp.o"
  "CMakeFiles/mall_scenario.dir/mall_scenario.cpp.o.d"
  "mall_scenario"
  "mall_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mall_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
