# Empty dependencies file for mall_scenario.
# This may be replaced when dependencies are built.
