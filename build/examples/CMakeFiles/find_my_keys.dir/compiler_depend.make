# Empty compiler generated dependencies file for find_my_keys.
# This may be replaced when dependencies are built.
