file(REMOVE_RECURSE
  "CMakeFiles/find_my_keys.dir/find_my_keys.cpp.o"
  "CMakeFiles/find_my_keys.dir/find_my_keys.cpp.o.d"
  "find_my_keys"
  "find_my_keys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/find_my_keys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
